"""Tests for the batch-analysis engine (repro.engine)."""

from __future__ import annotations

import json

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.cli import main
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.parametric import exact_sweep_delay, sweep_delay
from repro.designs import example1, gaas_datapath
from repro.engine import (
    AnalyzeJob,
    BaselineJob,
    Engine,
    FaultJob,
    MinimizeJob,
    ResultCache,
    SweepJob,
    job_key,
    jobs_from_grid,
)
from repro.errors import ReproError
from repro.lang.writer import write_circuit
from repro.lp.backends import solve
from repro.lp.simplex import solve_simplex


def _two_latch_graph(reversed_order: bool):
    """The same circuit declared in two different builder orderings."""
    b = CircuitBuilder(phases=["phi1", "phi2"])
    names = ["A", "B"] if not reversed_order else ["B", "A"]
    for name in names:
        phase = "phi1" if name == "A" else "phi2"
        b.latch(name, phase=phase, setup=2, delay=3)
    paths = [("A", "B", 10.0), ("B", "A", 12.0)]
    if reversed_order:
        paths.reverse()
    for src, dst, delay in paths:
        b.path(src, dst, delay)
    return b.build()


class TestCanonicalHash:
    def test_stable_across_builder_orderings(self):
        j1 = MinimizeJob(graph=_two_latch_graph(False))
        j2 = MinimizeJob(graph=_two_latch_graph(True))
        assert job_key(j1) == job_key(j2)

    def test_distinguishes_delay_values(self):
        g = _two_latch_graph(False)
        j1 = MinimizeJob(graph=g, arc_override=("A", "B", 10.0))
        j2 = MinimizeJob(graph=g, arc_override=("A", "B", 10.0 + 1e-12))
        assert job_key(j1) != job_key(j2)

    def test_distinguishes_job_kinds_and_options(self):
        g = _two_latch_graph(False)
        minimize = MinimizeJob(graph=g)
        baseline = BaselineJob(graph=g, algorithm="mlp")
        compact_off = MinimizeJob(graph=g, mlp=MLPOptions(compact=False))
        assert len({job_key(minimize), job_key(baseline), job_key(compact_off)}) == 3

    def test_label_does_not_affect_key(self):
        g = _two_latch_graph(False)
        assert job_key(MinimizeJob(graph=g, label="x")) == job_key(
            MinimizeJob(graph=g, label="y")
        )

    def test_unknown_baseline_rejected(self):
        with pytest.raises(ReproError):
            BaselineJob(graph=_two_latch_graph(False), algorithm="magic")


class TestCache:
    def test_hit_miss_accounting(self, ex1):
        engine = Engine(jobs=1)
        job = MinimizeJob(graph=ex1, mlp=MLPOptions(verify=False))
        first, second = engine.run_jobs([job]), engine.run_jobs([job])
        assert not first[0].cached
        assert second[0].cached
        assert second[0].value == first[0].value
        stats = engine.cache.stats
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.entries == 1

    def test_within_batch_duplicates_execute_once(self, ex1):
        engine = Engine(jobs=1)
        job = MinimizeJob(graph=ex1, mlp=MLPOptions(verify=False))
        results = engine.run_jobs([job, job, job])
        assert [r.value for r in results] == [results[0].value] * 3
        assert [r.cached for r in results] == [False, True, True]
        assert engine.report.executed == 1

    def test_failed_results_not_cached(self):
        engine = Engine(jobs=1)
        job = FaultJob(mode="error")
        engine.run_jobs([job])
        assert len(engine.cache) == 0

    def test_lru_eviction(self, ex1):
        cache = ResultCache(max_entries=2)
        engine = Engine(jobs=1, cache=cache)
        jobs = jobs_from_grid(ex1, "L4", "L1", [1.0, 2.0, 3.0])
        engine.run_jobs(jobs)
        assert len(cache) == 2
        assert cache.stats.evictions == 1

    def test_disk_round_trip(self, ex1, tmp_path):
        path = str(tmp_path / "store.json")
        with Engine(jobs=1, cache_path=path) as engine:
            baseline = engine.run_jobs(
                [MinimizeJob(graph=ex1, mlp=MLPOptions(verify=False))]
            )[0]
        assert json.load(open(path))["entries"]

        revived = Engine(jobs=1, cache_path=path)
        result = revived.run_jobs(
            [MinimizeJob(graph=ex1, mlp=MLPOptions(verify=False))]
        )[0]
        assert result.cached
        assert result.value == baseline.value
        assert revived.cache.stats.loaded_from_disk == 1

    def test_corrupt_store_ignored(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text("{not json")
        cache = ResultCache(path=str(path))
        assert len(cache) == 0


class TestParallelEqualsSerial:
    GRID = [0.0, 30.0, 60.0, 90.0, 120.0]

    def _run(self, graph, src, dst, jobs):
        engine = Engine(jobs=jobs)
        results = engine.run_jobs(
            jobs_from_grid(graph, src, dst, self.GRID, mlp=MLPOptions(verify=False))
        )
        assert all(r.ok for r in results)
        return results

    def test_example1(self, ex1):
        serial = self._run(ex1, "L4", "L1", 1)
        parallel = self._run(ex1, "L4", "L1", 3)
        assert [r.value for r in serial] == [r.value for r in parallel]
        assert [r.payload for r in serial] == [r.payload for r in parallel]

    def test_gaas(self, gaas):
        arcs = list(gaas.arcs)
        src, dst = arcs[0].src, arcs[0].dst
        grid = [0.1, 0.5, 1.0, 2.0]
        s = Engine(jobs=1).run_jobs(
            jobs_from_grid(gaas, src, dst, grid, mlp=MLPOptions(verify=False))
        )
        p = Engine(jobs=3).run_jobs(
            jobs_from_grid(gaas, src, dst, grid, mlp=MLPOptions(verify=False))
        )
        assert [r.value for r in s] == [r.value for r in p]
        assert [r.payload for r in s] == [r.payload for r in p]

    def test_mixed_job_kinds_keep_order(self, ex1):
        schedule = minimize_cycle_time(ex1).schedule
        batch = [
            MinimizeJob(graph=ex1, mlp=MLPOptions(verify=False)),
            AnalyzeJob(graph=ex1, schedule=schedule),
            BaselineJob(graph=ex1, algorithm="nrip"),
        ]
        serial = Engine(jobs=1).run_jobs(batch)
        parallel = Engine(jobs=3).run_jobs(batch)
        assert [r.kind for r in serial] == ["minimize", "analyze", "baseline"]
        assert [(r.kind, r.value) for r in serial] == [
            (r.kind, r.value) for r in parallel
        ]


class TestAdaptiveSweep:
    def test_jobs4_matches_serial_with_fewer_solves(self, ex1):
        grid = [float(x) for x in range(0, 141, 5)]
        serial = sweep_delay(ex1, "L4", "L1", grid)

        engine = Engine(jobs=4)
        parallel = sweep_delay(ex1, "L4", "L1", grid, engine=engine)

        assert [
            (s.start, s.end, s.slope, s.intercept) for s in serial.segments
        ] == [(s.start, s.end, s.slope, s.intercept) for s in parallel.segments]
        assert [p.period for p in serial.points] == [
            p.period for p in parallel.points
        ]
        report = engine.report
        assert report.cache_hits > 0
        assert report.lp_solves < len(grid)
        # Fig. 7: flat, slope 1/2, slope 1 with breakpoints at 20 and 100.
        assert parallel.slopes == pytest.approx([0.0, 0.5, 1.0])
        assert parallel.breakpoints == pytest.approx([20.0, 100.0])

    def test_sweep_job_through_run_jobs(self, ex1):
        engine = Engine(jobs=1)
        job = SweepJob(
            graph=ex1,
            src="L4",
            dst="L1",
            grid=tuple(float(x) for x in range(0, 141, 10)),
        )
        result = engine.run_jobs([job])[0]
        assert result.ok
        assert len(result.payload["segments"]) == 3
        assert engine.run_jobs([job])[0].cached

    def test_exact_sweep_through_engine(self, ex1):
        engine = Engine(jobs=1)
        result = exact_sweep_delay(ex1, "L4", "L1", 0.0, 140.0, engine=engine)
        assert result.breakpoints == pytest.approx([20.0, 100.0], abs=1e-4)
        assert len(engine.cache) > 0  # evaluations landed in the cache

    def test_refine_breakpoint_never_resolves_twice(self, ex1):
        from repro.core.parametric import delay_evaluator, refine_breakpoint

        engine = Engine(jobs=1)
        evaluate = delay_evaluator(ex1, "L4", "L1", engine=engine)
        kink = refine_breakpoint(evaluate, 50.0, 140.0, tol=1e-3)
        assert kink == pytest.approx(100.0, abs=1e-2)
        stats = engine.cache.stats
        # The chord test re-evaluates interval quarter points as they
        # become midpoints of the next iteration.
        assert stats.hits > 0
        assert engine.report.lp_solves == stats.misses

    def test_rejects_bad_grid(self, ex1):
        with pytest.raises(ReproError):
            sweep_delay(ex1, "L4", "L1", [10.0, 10.0])
        with pytest.raises(ReproError):
            sweep_delay(ex1, "L4", "L1", [10.0])


class TestFaultHandling:
    def test_worker_crash_is_retried(self, tmp_path):
        flag = str(tmp_path / "crash-flag")
        engine = Engine(jobs=2, retries=1)
        results = engine.run_jobs(
            [
                FaultJob(mode="ok", value=1.0),
                FaultJob(mode="crash", value=2.0, crash_once_path=flag),
                FaultJob(mode="ok", value=3.0),
            ]
        )
        assert [r.value for r in results] == [1.0, 2.0, 3.0]
        assert results[1].attempts == 2
        assert engine.pool.stats.crashes == 1
        assert engine.pool.stats.retries == 1

    def test_persistent_crash_fails_after_retries(self):
        engine = Engine(jobs=2, retries=1)
        result = engine.run_jobs([FaultJob(mode="crash")])[0]
        assert not result.ok
        assert "worker crashed" in result.error
        assert result.attempts == 2

    def test_timeout_then_recovery(self, tmp_path):
        flag = str(tmp_path / "hang-flag")
        engine = Engine(jobs=2, timeout=0.5, retries=1)
        result = engine.run_jobs(
            [FaultJob(mode="hang", seconds=30.0, value=7.0, crash_once_path=flag)]
        )[0]
        assert result.ok
        assert result.value == 7.0
        assert engine.pool.stats.timeouts == 1

    def test_soft_failure_not_retried(self):
        engine = Engine(jobs=2)
        result = engine.run_jobs([FaultJob(mode="error")])[0]
        assert not result.ok
        assert "fault injection" in result.error
        assert result.attempts == 1
        assert engine.pool.stats.retries == 0


class TestMetrics:
    def test_lp_result_exposes_pivots_and_time(self, ex1):
        from repro.core.constraints import build_program

        program = build_program(ex1).program
        result = solve_simplex(program)
        assert result.pivots == result.iterations > 0
        assert result.solve_seconds > 0.0
        via_registry = solve(program)
        assert via_registry.solve_seconds > 0.0

    def test_minimize_reports_stages(self, ex1):
        result = minimize_cycle_time(ex1)
        stages = result.extra["stages"]
        for stage in ("constraint_gen", "lp_solve", "slide", "analysis"):
            assert stages[stage] >= 0.0
        assert result.extra["lp_solves"] == 2  # Tc pass + compact pass
        assert result.extra["lp_iterations"] > 0

    def test_report_aggregates(self, ex1):
        engine = Engine(jobs=1)
        engine.run_jobs(
            jobs_from_grid(
                ex1, "L4", "L1", [10.0, 20.0], mlp=MLPOptions(verify=False)
            )
        )
        report = engine.report
        assert report.jobs == 2
        assert report.executed == 2
        assert report.lp_solves == 4
        assert report.lp_iterations > 0
        assert report.stage_seconds["lp_solve"] > 0.0
        text = report.format()
        assert "simplex pivots" in text
        assert "constraint_gen" in text


class TestLadder:
    def test_matches_direct_baselines(self, ex1):
        from repro.baselines import run_ladder

        rows = run_ladder(ex1)
        by_algorithm = {row.algorithm: row for row in rows}
        assert by_algorithm["mlp"].period == pytest.approx(110.0)
        assert by_algorithm["mlp"].ratio == 1.0
        assert by_algorithm["nrip"].period == pytest.approx(120.0)
        assert all(row.ratio >= 1.0 for row in rows)

    def test_parallel_ladder_matches_serial(self, ex1):
        from repro.baselines import run_ladder

        serial = run_ladder(ex1)
        parallel = run_ladder(ex1, jobs=3)
        assert [(r.algorithm, r.period) for r in serial] == [
            (r.algorithm, r.period) for r in parallel
        ]


class TestBatchCLI:
    @pytest.fixture
    def design_files(self, tmp_path):
        paths = []
        for name, delta in [("a", 40.0), ("b", 80.0)]:
            path = tmp_path / f"{name}.lcd"
            path.write_text(write_circuit(example1(delta)))
            paths.append(str(path))
        return paths

    def test_batch_files(self, design_files, capsys):
        assert main(["batch", *design_files, "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Tc = 90" in out
        assert "Tc = 110" in out
        assert "simplex pivots" in out
        assert "2 workers" in out

    def test_batch_manifest_and_cache(self, design_files, tmp_path, capsys):
        manifest = tmp_path / "designs.txt"
        manifest.write_text("# comment\n" + "\n".join(design_files) + "\n")
        cache = str(tmp_path / "cache.json")
        assert main(["batch", str(manifest), "--cache", cache]) == 0
        first = capsys.readouterr().out
        assert "0 from cache" in first
        assert main(["batch", str(manifest), "--cache", cache]) == 0
        second = capsys.readouterr().out
        assert "2 from cache" in second
        assert "(cached)" in second

    def test_batch_no_files_errors(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("# nothing\n")
        assert main(["batch", str(empty)]) == 2

class TestWarmStartEngine:
    def test_hints_do_not_affect_cache_key(self, ex1):
        from repro.lp.basis import Basis

        plain = MinimizeJob(graph=ex1, arc_override=("L4", "L1", 30.0))
        hinted = MinimizeJob(
            graph=ex1,
            arc_override=("L4", "L1", 30.0),
            warm_start=Basis(columns=(0, 1), structure="abc"),
            cold_pivots_hint=42,
        )
        assert job_key(plain) == job_key(hinted)

    def test_warm_start_flag_does_affect_cache_key(self, ex1):
        on = MinimizeJob(graph=ex1, mlp=MLPOptions(warm_start=True))
        off = MinimizeJob(graph=ex1, mlp=MLPOptions(warm_start=False))
        assert job_key(on) != job_key(off)

    def test_sweep_warm_vs_cold_identical_fewer_pivots(self, ex1):
        grid = list(range(0, 145, 10))
        runs = {}
        for label, warm in (("cold", False), ("warm", True)):
            engine = Engine(jobs=1)
            mlp = MLPOptions(
                verify=False, compact=False, backend="revised", warm_start=warm
            )
            result = sweep_delay(ex1, "L4", "L1", grid, mlp=mlp, engine=engine)
            runs[label] = (result, engine.report)
        cold, warm = runs["cold"], runs["warm"]
        assert [p.period for p in cold[0].points] == pytest.approx(
            [p.period for p in warm[0].points], abs=1e-9
        )
        assert cold[1].lp_iterations > warm[1].lp_iterations
        assert warm[1].warm_start_hits > 0
        assert warm[1].pivots_saved > 0
        assert "warm starts:" in warm[1].format()
        assert "warm starts:" not in cold[1].format()

    def test_parallel_warm_sweep_matches_serial(self, ex1):
        grid = list(range(0, 145, 10))
        serial = sweep_delay(ex1, "L4", "L1", grid, engine=Engine(jobs=1))
        parallel = sweep_delay(ex1, "L4", "L1", grid, engine=Engine(jobs=3))
        assert [p.period for p in serial.points] == [
            p.period for p in parallel.points
        ]
        assert serial.breakpoints == parallel.breakpoints

    def test_minimize_job_carries_basis_payload(self, ex1):
        engine = Engine(jobs=1)
        mlp = MLPOptions(verify=False, compact=False, backend="revised")
        result = engine.run_jobs([MinimizeJob(graph=ex1, mlp=mlp)])[0]
        basis = result.payload["basis"]
        assert basis is not None
        assert all(isinstance(c, int) for c in basis["columns"])
        assert isinstance(basis["structure"], str)

    def test_simplex_backend_payload_has_no_basis(self, ex1):
        engine = Engine(jobs=1)
        mlp = MLPOptions(verify=False, compact=False, backend="simplex")
        result = engine.run_jobs([MinimizeJob(graph=ex1, mlp=mlp)])[0]
        assert result.payload["basis"] is None


class TestCLIBackends:
    @pytest.fixture
    def ex1_file(self, tmp_path):
        path = tmp_path / "ex1.lcd"
        path.write_text(write_circuit(example1(80.0)))
        return str(path)

    def test_batch_backend_revised(self, ex1_file, capsys):
        assert main(["batch", ex1_file, "--backend", "revised"]) == 0
        out = capsys.readouterr().out
        assert "Tc = 110" in out

    def test_batch_backend_scipy_or_simplex(self, ex1_file, capsys):
        from repro.lp.backends import available_backends

        backend = "scipy" if "scipy" in available_backends() else "simplex"
        assert main(["batch", ex1_file, "--backend", backend]) == 0
        assert "Tc = 110" in capsys.readouterr().out

    def test_sweep_default_backend_warm(self, ex1_file, capsys):
        assert main(
            ["sweep", ex1_file, "L4", "L1", "--lo", "0", "--hi", "140",
             "--exact"]
        ) == 0
        out = capsys.readouterr().out
        assert "breakpoints: [20.0, 100.0]" in out

    def test_sweep_cold_start_matches(self, ex1_file, capsys):
        assert main(
            ["sweep", ex1_file, "L4", "L1", "--lo", "0", "--hi", "140",
             "--exact", "--cold-start", "--backend", "revised"]
        ) == 0
        out = capsys.readouterr().out
        assert "breakpoints: [20.0, 100.0]" in out
