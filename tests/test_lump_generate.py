"""Unit tests for vector-signal lumping and random circuit generators."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.generate import random_multiloop_circuit, random_pipeline
from repro.circuit.lump import lump_parallel_latches
from repro.circuit.validate import check_loop_phases
from repro.core.mlp import minimize_cycle_time
from repro.errors import CircuitError


def bus_circuit(width=8):
    """A 2-stage loop where each stage is a `width`-bit bus of latches."""
    b = CircuitBuilder(["phi1", "phi2"])
    for i in range(width):
        b.latch(f"A{i}", phase="phi1", setup=2, delay=3)
        b.latch(f"B{i}", phase="phi2", setup=2, delay=3)
    for i in range(width):
        b.path(f"A{i}", f"B{i}", 10)
        b.path(f"B{i}", f"A{i}", 20)
    return b.build()


class TestLumping:
    def test_bus_collapses_to_two_latches(self):
        reduced, mapping = lump_parallel_latches(bus_circuit(8))
        assert reduced.l == 2
        assert len(reduced.arcs) == 2
        # All A-bits map to one representative, all B-bits to another.
        assert len({mapping[f"A{i}"] for i in range(8)}) == 1
        assert len({mapping[f"B{i}"] for i in range(8)}) == 1

    def test_lumping_preserves_optimal_period(self):
        full = bus_circuit(4)
        reduced, _ = lump_parallel_latches(full)
        assert minimize_cycle_time(full).period == pytest.approx(
            minimize_cycle_time(reduced).period
        )

    def test_different_delays_not_merged(self):
        b = CircuitBuilder(["phi1", "phi2"])
        b.latch("A0", phase="phi1", setup=2, delay=3)
        b.latch("A1", phase="phi1", setup=2, delay=4)  # different delay
        b.latch("B", phase="phi2", setup=2, delay=3)
        b.path("A0", "B", 10)
        b.path("A1", "B", 10)
        reduced, _ = lump_parallel_latches(b.build())
        assert reduced.l == 3

    def test_different_fanout_not_merged(self):
        b = CircuitBuilder(["phi1", "phi2"])
        b.latch("A0", phase="phi1")
        b.latch("A1", phase="phi1")
        b.latch("B0", phase="phi2")
        b.latch("B1", phase="phi2")
        b.path("A0", "B0", 10)
        b.path("A1", "B1", 99)  # different arc delay
        reduced, _ = lump_parallel_latches(b.build())
        assert reduced.l == 4

    def test_parallel_arcs_merge_to_worst_case(self):
        # Two source bits with identical signatures feeding one destination:
        # the merged arc keeps max delay and min min_delay.
        b = CircuitBuilder(["phi1", "phi2"])
        b.latch("A0", phase="phi1")
        b.latch("A1", phase="phi1")
        b.latch("B", phase="phi2")
        b.path("A0", "B", 10, min_delay=2)
        b.path("A1", "B", 10, min_delay=2)
        reduced, mapping = lump_parallel_latches(b.build())
        assert reduced.l == 2
        arc = reduced.arc(mapping["A0"], "B")
        assert arc.delay == 10 and arc.min_delay == 2

    def test_paper_complexity_claim(self):
        # Section IV: lumping keeps l small even for wide datapaths.  A
        # 32-bit bus costs the same as a 1-bit one.
        wide, _ = lump_parallel_latches(bus_circuit(32))
        narrow, _ = lump_parallel_latches(bus_circuit(1))
        assert wide.l == narrow.l


class TestGenerators:
    def test_pipeline_structure(self):
        g = random_pipeline(6, k=2, seed=1)
        assert g.l == 6
        assert len(g.arcs) == 6  # 5 forward + 1 closing

    def test_pipeline_deterministic(self):
        a = random_pipeline(5, seed=42)
        b = random_pipeline(5, seed=42)
        assert [arc.delay for arc in a.arcs] == [arc.delay for arc in b.arcs]

    def test_pipeline_open(self):
        g = random_pipeline(4, k=2, seed=0, close_loop=False)
        assert len(g.arcs) == 3
        assert g.feedback_loops() == []

    def test_pipeline_loops_are_legal(self):
        for seed in range(5):
            g = random_pipeline(7, k=3, seed=seed)
            assert check_loop_phases(g) == []

    def test_single_phase_loop_rejected(self):
        with pytest.raises(CircuitError):
            random_pipeline(4, k=1)

    def test_multiloop_structure(self):
        g = random_multiloop_circuit(8, n_extra_arcs=4, k=2, seed=3)
        assert g.l == 8
        assert len(g.arcs) >= 8

    def test_multiloop_loops_are_legal(self):
        for seed in range(5):
            g = random_multiloop_circuit(10, n_extra_arcs=6, k=2, seed=seed)
            assert check_loop_phases(g) == []

    def test_multiloop_solvable(self):
        g = random_multiloop_circuit(8, n_extra_arcs=4, k=2, seed=7)
        result = minimize_cycle_time(g)
        assert result.period > 0
        assert result.feasible

    def test_multiloop_needs_two_latches(self):
        with pytest.raises(CircuitError):
            random_multiloop_circuit(1)
