"""Sparse revised simplex: LU engines, eta updates, and backend parity.

Three layers of coverage:

* the factorization substrate -- :class:`MarkowitzLU` (pure python) and
  :class:`ScipyLU` against dense numpy reference solves, plus the
  product-form eta file of :class:`BasisFactorization` under simulated
  pivot sequences with periodic refactorization;
* the solver -- :func:`solve_sparse_simplex` on the classic small cases
  (bounded / infeasible / unbounded / equality + free variables / duals)
  and on random LPs, always checked against the dense revised simplex;
* the pipeline -- a hypothesis property test pushing random multiloop
  circuits and the structured generator families through *all four*
  backends (``simplex``, ``revised``, ``sparse``, ``cycle``) demanding
  one optimum and one sanitized schedule.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.generate import random_multiloop_circuit
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.designs.generators import banked_array, pipeline
from repro.lp.backends import (
    available_backends,
    canonical_backend,
    solve,
    supports_warm_start,
)
from repro.lp.expr import var
from repro.lp.model import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.revised_simplex import solve_revised_simplex
from repro.lp.sparse import DENSE_STATS, csc_from_triplets
from repro.lp.sparse_lu import (
    HAVE_SCIPY,
    BasisFactorization,
    MarkowitzLU,
    make_factorization,
)
from repro.lp.sparse_simplex import SparseSimplexOptions, solve_sparse_simplex

ENGINES = ["python"] + (["scipy"] if HAVE_SCIPY else [])


def _random_sparse_csc(m: int, seed: int, density: float = 0.3):
    """A well-conditioned random sparse matrix (dominant 2.0 diagonal)."""
    rng = np.random.default_rng(seed)
    rows, cols, vals = [], [], []
    for j in range(m):
        rows.append(j)
        cols.append(j)
        vals.append(2.0)
        for i in range(m):
            if i != j and rng.random() < density:
                rows.append(i)
                cols.append(j)
                vals.append(float(rng.uniform(-1.0, 1.0)))
    return csc_from_triplets(
        (m, m),
        np.array(rows, dtype=np.int64),
        np.array(cols, dtype=np.int64),
        np.array(vals, dtype=np.float64),
    )


class TestLUEngines:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_solve_matches_numpy(self, engine, seed):
        m = 9
        a = _random_sparse_csc(m, seed)
        dense = a.to_dense(site="test")
        lu = make_factorization(engine)(m, a.indptr, a.indices, a.data)
        rng = np.random.default_rng(seed + 100)
        b = rng.uniform(-5.0, 5.0, size=m)
        np.testing.assert_allclose(lu.solve(b), np.linalg.solve(dense, b), atol=1e-9)
        np.testing.assert_allclose(
            lu.solve_transpose(b), np.linalg.solve(dense.T, b), atol=1e-9
        )

    def test_markowitz_rejects_singular(self):
        rows = np.array([0, 0], dtype=np.int64)
        cols = np.array([0, 1], dtype=np.int64)
        vals = np.array([1.0, 1.0], dtype=np.float64)
        a = csc_from_triplets((2, 2), rows, cols, vals)
        with pytest.raises(np.linalg.LinAlgError):
            MarkowitzLU(2, a.indptr, a.indices, a.data)

    def test_markowitz_reports_factor_nnz(self):
        a = _random_sparse_csc(6, seed=5)
        lu = MarkowitzLU(6, a.indptr, a.indices, a.data)
        assert lu.nnz_factors() >= 6  # at least the pivots


class TestBasisFactorizationEtas:
    """The eta file must track an explicitly-updated dense basis exactly."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_updates_match_dense_reference(self, engine):
        m = 8
        n_cols = 24
        rng = np.random.default_rng(42)
        rows, cols, vals = [], [], []
        for j in range(n_cols):
            picked = rng.choice(m, size=3, replace=False)
            for i in picked:
                rows.append(int(i))
                cols.append(j)
                vals.append(float(rng.uniform(0.5, 2.0)))
        a = csc_from_triplets(
            (m, n_cols),
            np.array(rows, dtype=np.int64),
            np.array(cols, dtype=np.int64),
            np.array(vals, dtype=np.float64),
        )
        dense_a = a.to_dense(site="test")

        fact = BasisFactorization(a, factorization=engine, refactor_every=5)
        # Start from the identity basis via the unit-column sentinels.
        basis = [-(i + 1) for i in range(m)]
        fact.refactor(basis)
        dense_b = np.eye(m)

        for step in range(12):
            entering = int(rng.integers(0, n_cols))
            col = np.zeros(m)
            s, e = a.indptr[entering], a.indptr[entering + 1]
            col[a.indices[s:e]] = a.data[s:e]
            d = fact.ftran(col)
            candidates = np.nonzero(np.abs(d) > 1e-6)[0]
            if candidates.size == 0:
                continue
            r = int(candidates[rng.integers(0, candidates.size)])
            fact.update(r, d)
            dense_b[:, r] = dense_a[:, entering]
            basis[r] = entering
            if fact.should_refactor():
                fact.refactor(basis)
                assert fact.n_etas == 0

            rhs = rng.uniform(-3.0, 3.0, size=m)
            np.testing.assert_allclose(
                fact.ftran(rhs), np.linalg.solve(dense_b, rhs), atol=1e-8
            )
            np.testing.assert_allclose(
                fact.btran(rhs), np.linalg.solve(dense_b.T, rhs), atol=1e-8
            )
        assert fact.refactorizations >= 2


class TestSparseSolverBasics:
    def test_bounded_optimum(self):
        lp = LinearProgram()
        x, y = var("x"), var("y")
        lp.minimize(-x - 2 * y)
        lp.add_le(x + y, 4, name="sum")
        lp.add_le(x, 3)
        lp.add_le(y, 2)
        r = solve_sparse_simplex(lp)
        assert r.status is LPStatus.OPTIMAL
        assert r.objective == pytest.approx(-6.0)
        assert r.values == pytest.approx({"x": 2.0, "y": 2.0})
        assert r.extra["warm_start"] == "cold"
        assert "factorization" in r.extra

    def test_infeasible(self):
        lp = LinearProgram()
        lp.add_le(var("x"), -1)
        assert solve_sparse_simplex(lp).status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        lp = LinearProgram()
        lp.minimize(-var("x"))
        lp.add_ge(var("x"), 1)
        assert solve_sparse_simplex(lp).status is LPStatus.UNBOUNDED

    def test_equality_and_free(self):
        lp = LinearProgram()
        lp.set_free("z")
        lp.minimize(var("z"))
        lp.add_eq(var("z") + var("x"), 5)
        lp.add_le(var("x"), 7)
        r = solve_sparse_simplex(lp)
        assert r.objective == pytest.approx(-2.0)

    def test_duals_match_revised(self):
        lp = LinearProgram()
        x, y = var("x"), var("y")
        lp.minimize(-x - y)
        lp.add_le(x + 2 * y, 6, name="a")
        lp.add_le(2 * x + y, 6, name="b")
        sparse = solve_sparse_simplex(lp)
        revised = solve_revised_simplex(lp)
        assert sparse.objective == pytest.approx(revised.objective)
        for name in ("a", "b"):
            assert sparse.duals[name] == pytest.approx(revised.duals[name])

    def test_empty_program(self):
        lp = LinearProgram()
        lp.minimize(var("x"))
        r = solve_sparse_simplex(lp)
        assert r.status is LPStatus.OPTIMAL
        assert r.objective == pytest.approx(0.0)

    def test_periodic_refactorization(self):
        lp = LinearProgram()
        total = var("x0")
        lp.add_ge(var("x0"), 1, name="base")
        for i in range(1, 12):
            lp.add_ge(var(f"x{i}") - var(f"x{i-1}"), 1, name=f"step{i}")
            total = total + var(f"x{i}")
        lp.minimize(total)
        r = solve_sparse_simplex(lp, SparseSimplexOptions(refactor_every=3))
        assert r.status is LPStatus.OPTIMAL
        assert r.extra["refactorizations"] > 0
        assert r.objective == pytest.approx(solve_sparse_simplex(lp).objective)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_forced_engine(self, engine):
        lp = LinearProgram()
        x, y = var("x"), var("y")
        lp.minimize(-x - y)
        lp.add_le(x + 2 * y, 6)
        lp.add_le(2 * x + y, 6)
        r = solve_sparse_simplex(lp, SparseSimplexOptions(factorization=engine))
        assert r.status is LPStatus.OPTIMAL
        assert r.extra["factorization"] == engine
        assert r.objective == pytest.approx(-4.0)


def _random_feasible_lp(seed: int) -> LinearProgram:
    """A small random LP that is feasible (x = 0 works) and bounded (boxes)."""
    rng = random.Random(seed)
    n = rng.randint(2, 4)
    lp = LinearProgram(name=f"rand{seed}")
    names = [f"x{i}" for i in range(n)]
    objective = None
    for name in names:
        coeff = rng.uniform(-5.0, 5.0)
        term = coeff * var(name)
        objective = term if objective is None else objective + term
        lp.add_le(var(name), rng.uniform(1.0, 10.0), name=f"box_{name}")
    lp.minimize(objective)
    for j in range(rng.randint(1, 4)):
        row = None
        for name in names:
            if rng.random() < 0.7:
                term = rng.uniform(-3.0, 3.0) * var(name)
                row = term if row is None else row + term
        if row is None:
            continue
        if rng.random() < 0.5:
            lp.add_le(row, rng.uniform(0.0, 8.0), name=f"le{j}")
        else:
            lp.add_ge(row, rng.uniform(-8.0, 0.0), name=f"ge{j}")
    return lp


class TestAgainstRevised:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_fifty_random_lps_agree(self, engine):
        options = SparseSimplexOptions(factorization=engine)
        for seed in range(50):
            lp = _random_feasible_lp(seed)
            revised = solve_revised_simplex(lp)
            sparse = solve_sparse_simplex(lp, options)
            assert sparse.status is revised.status, seed
            assert sparse.objective == pytest.approx(revised.objective), seed
            for name, value in revised.duals.items():
                assert sparse.duals[name] == pytest.approx(value, abs=1e-8), seed


class TestSparseWarmStart:
    def _lp(self, cap: float = 4.0) -> LinearProgram:
        lp = LinearProgram()
        x, y = var("x"), var("y")
        lp.minimize(-x - 2 * y)
        lp.add_le(x + y, cap, name="sum")
        lp.add_le(x, 3, name="cx")
        lp.add_le(y, 2, name="cy")
        return lp

    def test_restart_from_own_basis_is_free(self):
        cold = solve_sparse_simplex(self._lp())
        warm = solve_sparse_simplex(self._lp(), warm_start=cold.extra["basis"])
        assert warm.extra["warm_start"] == "hit"
        assert warm.iterations == 0
        assert warm.objective == pytest.approx(cold.objective)

    def test_warm_start_after_rhs_change(self):
        cold = solve_sparse_simplex(self._lp(cap=4.0))
        warm = solve_sparse_simplex(
            self._lp(cap=4.5), warm_start=cold.extra["basis"]
        )
        fresh = solve_sparse_simplex(self._lp(cap=4.5))
        assert warm.extra["warm_start"] == "hit"
        assert warm.objective == pytest.approx(fresh.objective)
        assert warm.iterations <= fresh.iterations

    def test_structure_mismatch_is_a_miss(self):
        cold = solve_sparse_simplex(self._lp())
        other = self._lp()
        other.add_le(var("x") - var("y"), 10, name="extra")
        warm = solve_sparse_simplex(other, warm_start=cold.extra["basis"])
        assert warm.extra["warm_start"] == "miss"
        assert warm.status is LPStatus.OPTIMAL

    def test_backend_capability_flags(self):
        assert "sparse" in available_backends()
        assert supports_warm_start("sparse")
        assert canonical_backend("sparse") == "sparse"

    def test_solve_dispatch_forwards_warm_start(self):
        cold = solve(self._lp(), backend="sparse")
        warm = solve(
            self._lp(), backend="sparse", warm_start=cold.extra["basis"]
        )
        assert warm.extra["warm_start"] == "hit"


def _schedule_tuple(result):
    sched = result.schedule
    return [
        (p.name, round(p.start, 6), round(p.width, 6)) for p in sched.phases
    ]


AGREEMENT_BACKENDS = ["simplex", "revised", "sparse", "cycle"]


class TestFourBackendAgreement:
    """Property: all backends produce one optimum and one sanitized schedule."""

    @settings(max_examples=8, deadline=None)
    @given(
        n=st.integers(min_value=6, max_value=20),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_random_multiloop(self, n, seed):
        circuit = random_multiloop_circuit(n, n_extra_arcs=n // 2, k=2, seed=seed)
        self._check_agreement(circuit)

    @pytest.mark.parametrize(
        "circuit_factory",
        [
            lambda: pipeline(6, 3),
            lambda: pipeline(8, 2, k=4),
            lambda: banked_array(3, 6),
            lambda: banked_array(2, 10, k=4),
        ],
    )
    def test_generator_families(self, circuit_factory):
        self._check_agreement(circuit_factory())

    def _check_agreement(self, circuit):
        results = {}
        for backend in AGREEMENT_BACKENDS:
            results[backend] = minimize_cycle_time(
                circuit, mlp=MLPOptions(backend=backend, sanitize=True)
            )
        reference = results["revised"]
        ref_schedule = _schedule_tuple(reference)
        for backend, result in results.items():
            assert result.period == pytest.approx(
                reference.period, abs=1e-9
            ), backend
            assert result.extra["sanitize"].ok, backend
        # The revised family (revised / sparse / cycle) shares one
        # canonical tie-break pass, so the reported schedules must be
        # *identical*, not merely equally optimal.  The dense tableau
        # simplex may legitimately settle on an alternate optimum.
        for backend in ("sparse", "cycle"):
            assert _schedule_tuple(results[backend]) == ref_schedule, backend


class TestDenseObservability:
    def test_small_views_do_not_count(self):
        lp = _random_feasible_lp(0)
        before = DENSE_STATS.count
        lp.to_arrays()  # tiny: under the threshold, stays silent
        assert DENSE_STATS.count == before

    def test_large_views_count_and_meter(self):
        from repro.lp.sparse import note_dense_materialization

        before = (DENSE_STATS.count, DENSE_STATS.cells)
        note_dense_materialization("test.site", rows=2001, cols=10)
        assert DENSE_STATS.count == before[0] + 1
        assert DENSE_STATS.cells == before[1] + 2001 * 10
        DENSE_STATS.reset()
        assert DENSE_STATS.count == 0
