"""Tests for the combined signoff entry point."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.clocking.library import two_phase_clock
from repro.clocking.phase import ClockPhase
from repro.clocking.schedule import ClockSchedule
from repro.core.mlp import minimize_cycle_time
from repro.core.signoff import signoff
from repro.designs import example1, gaas_datapath


class TestVerdicts:
    def test_clean_design_passes(self, ex1):
        schedule = minimize_cycle_time(ex1).schedule
        report = signoff(ex1, schedule)
        assert report.ok
        assert report.failures == []
        assert "PASS" in str(report)

    def test_gaas_structure_and_setup_pass_at_optimum(self, gaas):
        # The paper's model is long-path only: with no contamination
        # (min) delays in the data, the hold check is infinitely
        # pessimistic about same-phase transfers, so full signoff asks
        # more than the model can answer.  Structure and setup must pass.
        schedule = minimize_cycle_time(gaas).schedule
        report = signoff(gaas, schedule)
        assert report.structure.ok
        assert report.timing.feasible
        # And the hold verdict is reported, not raised.
        assert isinstance(report.hold.feasible, bool)

    def test_setup_failure_reported(self, ex1):
        schedule = two_phase_clock(112.0)  # narrow phases, see analyzer test
        report = signoff(ex1, schedule)
        assert not report.ok
        assert any("setup violation" in f for f in report.failures)
        assert "FAIL" in str(report)

    def test_divergence_reported(self, ex1):
        report = signoff(ex1, two_phase_clock(10.0))
        assert not report.ok
        assert any("diverge" in f for f in report.failures)

    def test_hold_failure_reported(self):
        b = CircuitBuilder(["phi1", "phi2"])
        b.latch("A", phase="phi1", setup=2, delay=3, hold=95)
        b.latch("B", phase="phi2", setup=2, delay=3, hold=95)
        b.path("A", "B", 50)
        b.path("B", "A", 50)
        g = b.build()
        schedule = minimize_cycle_time(g).schedule
        report = signoff(g, schedule)
        assert not report.ok
        assert any("hold violation" in f for f in report.failures)

    def test_clock_violation_reported(self, ex1):
        overlapping = ClockSchedule(
            400.0,
            [ClockPhase("phi1", 0.0, 300.0), ClockPhase("phi2", 100.0, 150.0)],
        )
        report = signoff(ex1, overlapping)
        assert not report.ok
        assert any("C3" in f for f in report.failures)

    def test_structural_error_reported(self):
        b = CircuitBuilder(["phi1", "phi2"])
        b.latch("A", phase="phi1")
        b.latch("B", phase="phi1")  # single-phase latch loop
        b.path("A", "B", 1)
        b.path("B", "A", 1)
        report = signoff(b.build(), two_phase_clock(100.0))
        assert not report.ok
        assert any("single phase" in f for f in report.failures)

    def test_warnings_do_not_fail(self):
        b = CircuitBuilder(["phi1", "phi2"])
        b.latch("A", phase="phi1")  # isolated latch: warning only
        g = b.build()
        report = signoff(g, two_phase_clock(100.0))
        assert report.ok
        assert report.structure.warnings
