"""Tests for the analysis service layer (repro.serve)."""

import asyncio
import http.client
import json

import pytest

from repro.cli import main
from repro.engine import Engine
from repro.serve import (
    AnalysisService,
    RequestError,
    ResultStore,
    ServiceUnavailableError,
    job_from_request,
    latency_percentiles,
    run_in_thread,
    run_load,
)
from repro.serve.loadgen import load_mix

MIN_EX1 = {"kind": "minimize", "design": "example1"}
EX1_SCHEDULE = {
    "period": 110.0,
    "phases": [
        {"name": "phi1", "start": 0.0, "width": 50.0},
        {"name": "phi2", "start": 55.0, "width": 50.0},
    ],
}


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_minimize_request(self):
        job = job_from_request(MIN_EX1)
        assert job.kind == "minimize"

    def test_unknown_kind_rejected(self):
        with pytest.raises(RequestError, match="unknown job kind"):
            job_from_request({"kind": "optimize", "design": "example1"})

    def test_unknown_key_rejected_not_ignored(self):
        with pytest.raises(RequestError, match="unknown minimize request key"):
            job_from_request({**MIN_EX1, "optionz": {}})

    def test_unknown_option_rejected(self):
        with pytest.raises(RequestError, match="unknown 'options' key"):
            job_from_request({**MIN_EX1, "options": {"min_widht": 5.0}})

    def test_design_and_source_mutually_exclusive(self):
        with pytest.raises(RequestError, match="exactly one"):
            job_from_request({"kind": "minimize"})
        with pytest.raises(RequestError, match="exactly one"):
            job_from_request(
                {"kind": "minimize", "design": "example1", "source": "x"}
            )

    def test_inline_source(self):
        from repro.designs import example1
        from repro.lang.writer import write_circuit

        job = job_from_request(
            {"kind": "minimize", "source": write_circuit(example1())}
        )
        assert job.kind == "minimize"

    def test_analyze_needs_schedule(self):
        with pytest.raises(RequestError, match="needs a 'schedule'"):
            job_from_request({"kind": "analyze", "design": "example1"})

    def test_sweep_request(self):
        job = job_from_request(
            {
                "kind": "sweep",
                "design": "example1",
                "src": "L4",
                "dst": "L1",
                "lo": 0.0,
                "hi": 120.0,
                "points": 5,
            }
        )
        assert len(job.grid) == 5

    def test_identical_requests_share_a_key(self):
        from repro.engine.jobspec import job_key

        assert job_key(job_from_request(MIN_EX1)) == job_key(
            job_from_request(dict(MIN_EX1))
        )


# ----------------------------------------------------------------------
# Service core
# ----------------------------------------------------------------------
class TestService:
    def test_result_bit_identical_to_engine(self):
        async def _go():
            svc = AnalysisService(store=None, workers=1)
            record = await svc.submit_and_wait(MIN_EX1)
            await svc.drain(timeout=5)
            return record.result

        served = run(_go())
        direct = Engine(jobs=1).run_jobs([job_from_request(MIN_EX1)])[0]
        assert served.key == direct.key
        assert served.value == direct.value
        assert served.payload == direct.payload

    def test_coalescing_executes_once(self):
        async def _go():
            svc = AnalysisService(store=None, workers=4)
            records = await asyncio.gather(
                *[svc.submit(dict(MIN_EX1)) for _ in range(6)]
            )
            await asyncio.gather(*[svc.wait(r) for r in records])
            counters = svc.counters()
            await svc.drain(timeout=5)
            return records, counters

        records, counters = run(_go())
        assert counters["serve_executed_total"] == 1
        assert counters["serve_coalesced_total"] == 5
        values = {r.result.value for r in records}
        assert len(values) == 1
        sources = sorted(r.source for r in records)
        assert sources.count("executed") == 1
        assert sources.count("coalesced") == 5

    def test_restart_serves_from_store_with_zero_lp(self, tmp_path):
        path = str(tmp_path / "s.sqlite")

        async def _first():
            store = ResultStore(path)
            svc = AnalysisService(store=store, workers=1)
            record = await svc.submit_and_wait(MIN_EX1)
            await svc.drain(timeout=5)
            store.close()
            return record.result.value

        async def _second():
            store = ResultStore(path)
            svc = AnalysisService(store=store, workers=1)
            record = await svc.submit_and_wait(MIN_EX1)
            counters = svc.counters()
            await svc.drain(timeout=5)
            store.close()
            return record, counters

        value = run(_first())
        record, counters = run(_second())
        assert record.source == "store"
        assert record.result.value == value
        assert counters["serve_lp_solves_total"] == 0
        assert counters["serve_store_hits_total"] == 1

    def test_lint_admission_rejects_bad_request(self):
        # A max_period below the provable Tc lower bound fails the lint
        # pre-flight with a certificate -- the job is never executed.
        async def _go():
            svc = AnalysisService(store=None, workers=1)
            record = await svc.submit_and_wait(
                {**MIN_EX1, "options": {"max_period": 1.0}}
            )
            counters = svc.counters()
            await svc.drain(timeout=5)
            return record, counters

        record, counters = run(_go())
        assert record.status == "rejected"
        assert counters["serve_executed_total"] == 0
        assert counters["serve_rejected_total"] == 1

    def test_sweep_job_through_service(self):
        async def _go():
            svc = AnalysisService(store=None, workers=1)
            record = await svc.submit_and_wait(
                {
                    "kind": "sweep",
                    "design": "example1",
                    "src": "L4",
                    "dst": "L1",
                    "grid": [0.0, 40.0, 80.0, 120.0],
                }
            )
            await svc.drain(timeout=5)
            return record

        record = run(_go())
        assert record.status == "done"
        assert len(record.result.payload["points"]) == 4

    def test_draining_service_refuses_new_jobs(self):
        async def _go():
            svc = AnalysisService(store=None, workers=1)
            await svc.drain(timeout=5)
            with pytest.raises(ServiceUnavailableError):
                await svc.submit(MIN_EX1)

        run(_go())

    def test_progress_events_cover_lifecycle(self):
        async def _go():
            svc = AnalysisService(store=None, workers=1)
            record = await svc.submit_and_wait(MIN_EX1)
            await svc.drain(timeout=5)
            return [e["event"] for e in record.events]

        names = run(_go())
        assert names[0] == "queued"
        assert "started" in names
        assert names[-1] == "finished"
        assert "span" in names  # bridged from the job's private tracer

    def test_latency_percentiles(self):
        samples = [float(i) for i in range(1, 101)]
        pct = latency_percentiles(samples)
        assert pct["p50"] == pytest.approx(50.0, abs=1.0)
        assert pct["p95"] == pytest.approx(95.0, abs=1.0)
        assert pct["p99"] == pytest.approx(99.0, abs=1.0)
        assert pct["p50"] <= pct["p95"] <= pct["p99"]
        assert latency_percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}


# ----------------------------------------------------------------------
# HTTP server end to end
# ----------------------------------------------------------------------
@pytest.fixture
def server(tmp_path):
    store = ResultStore(str(tmp_path / "serve.sqlite"))
    handle = run_in_thread(AnalysisService(store=store, workers=2))
    yield handle
    handle.stop()


def _request(handle, method, path, body=None):
    conn = http.client.HTTPConnection(
        handle.server.host, handle.server.port, timeout=30
    )
    payload = json.dumps(body).encode() if body is not None else None
    conn.request(method, path, body=payload)
    response = conn.getresponse()
    raw = response.read().decode()
    conn.close()
    if "json" in response.getheader("Content-Type", ""):
        return response.status, json.loads(raw)
    return response.status, raw


class TestHttpServer:
    def test_healthz(self, server):
        status, body = _request(server, "GET", "/healthz")
        assert status == 200
        assert body["ok"] is True
        assert body["status"] == "serving"

    def test_post_wait_round_trip(self, server):
        status, body = _request(server, "POST", "/v1/jobs?wait=1", MIN_EX1)
        assert status == 200
        assert body["status"] == "done"
        assert body["result"]["value"] == pytest.approx(110.0)

    def test_async_submit_then_poll(self, server):
        status, body = _request(server, "POST", "/v1/jobs", MIN_EX1)
        assert status == 202
        job_id = body["id"]
        status, body = _request(server, "GET", f"/v1/jobs/{job_id}?wait=1")
        assert status == 200
        assert body["status"] == "done"

    def test_batch_submission(self, server):
        status, body = _request(
            server,
            "POST",
            "/v1/jobs?wait=1",
            {
                "jobs": [
                    MIN_EX1,
                    {"kind": "minimize", "design": "example2"},
                ]
            },
        )
        assert status == 200
        assert [j["status"] for j in body["jobs"]] == ["done", "done"]
        assert body["jobs"][0]["result"]["value"] == pytest.approx(110.0)
        assert body["jobs"][1]["result"]["value"] == pytest.approx(300.0)

    def test_result_lookup_by_key(self, server):
        _, body = _request(server, "POST", "/v1/jobs?wait=1", MIN_EX1)
        status, result = _request(
            server, "GET", f"/v1/results/{body['key']}"
        )
        assert status == 200
        assert result["value"] == pytest.approx(110.0)
        status, _ = _request(server, "GET", "/v1/results/deadbeef")
        assert status == 404

    def test_metrics_exposition(self, server):
        _request(server, "POST", "/v1/jobs?wait=1", MIN_EX1)
        status, text = _request(server, "GET", "/metrics")
        assert status == 200
        assert "repro_serve_requests_total 1" in text
        assert "repro_serve_executed_total 1" in text
        assert "repro_serve_latency_seconds_p50" in text

    def test_bad_requests_get_400(self, server):
        status, body = _request(
            server, "POST", "/v1/jobs?wait=1", {"kind": "minimize"}
        )
        assert status == 400
        assert "exactly one" in body["error"]
        status, _ = _request(server, "GET", "/v1/jobs/j999999")
        assert status == 404
        status, _ = _request(server, "DELETE", "/v1/jobs")
        assert status == 405

    def test_sse_stream_replays_events(self, server):
        _, posted = _request(server, "POST", "/v1/jobs?wait=1", MIN_EX1)
        conn = http.client.HTTPConnection(
            server.server.host, server.server.port, timeout=30
        )
        conn.request("GET", f"/v1/jobs/{posted['id']}?stream=1")
        response = conn.getresponse()
        assert response.getheader("Content-Type") == "text/event-stream"
        raw = response.read().decode()
        conn.close()
        names = [
            line.split(": ", 1)[1]
            for line in raw.splitlines()
            if line.startswith("event: ")
        ]
        assert names[0] == "queued"
        assert "finished" in names
        assert names[-1] == "end"
        # Each event body is valid JSON.
        for line in raw.splitlines():
            if line.startswith("data: "):
                json.loads(line[6:])

    def test_loadgen_against_server(self, server):
        report = run_load(server.url, requests=8, concurrency=2, seed=3)
        assert report.errors == 0
        assert report.requests == 8
        assert report.percentiles["p99"] > 0.0

    def test_loadgen_mix_fixture(self, server):
        mix = load_mix("examples/loadgen_mix.json")
        assert len(mix) == 7
        report = run_load(
            server.url, mix=mix, requests=10, concurrency=2, seed=5
        )
        assert report.errors == 0
        assert report.counter_delta("serve_executed_total") >= 1


class TestServeCli:
    def test_loadgen_cli_reports(self, server, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        code = main(
            [
                "loadgen",
                "--url",
                server.url,
                "--requests",
                "6",
                "--concurrency",
                "2",
                "--out",
                str(out_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "latency" in out
        data = json.loads(out_file.read_text())
        assert data["requests"] == 6
        assert data["errors"] == 0
        assert "latency_p99_ms" in data

    def test_loadgen_cli_json_format(self, server, capsys):
        assert main(
            ["loadgen", "--url", server.url, "--requests", "4",
             "--format", "json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["errors"] == 0
