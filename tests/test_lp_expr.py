"""Unit tests for linear expressions."""

import pytest

from repro.lp.expr import LinExpr, as_expr, linear_sum, var


class TestConstruction:
    def test_var(self):
        x = var("x")
        assert x.terms == {"x": 1.0}
        assert x.constant == 0.0

    def test_empty_var_name_rejected(self):
        with pytest.raises(ValueError):
            var("")

    def test_zero_coefficients_dropped(self):
        e = LinExpr({"x": 0.0, "y": 2.0})
        assert e.terms == {"y": 2.0}

    def test_as_expr_passthrough(self):
        x = var("x")
        assert as_expr(x) is x
        assert as_expr(3).constant == 3.0


class TestArithmetic:
    def test_add_vars(self):
        e = var("x") + var("y")
        assert e.terms == {"x": 1.0, "y": 1.0}

    def test_add_constant(self):
        e = var("x") + 5
        assert e.constant == 5.0

    def test_radd(self):
        e = 5 + var("x")
        assert e.constant == 5.0

    def test_sub_cancels(self):
        e = var("x") - var("x")
        assert e.terms == {}

    def test_rsub(self):
        e = 10 - var("x")
        assert e.terms == {"x": -1.0} and e.constant == 10.0

    def test_scalar_multiply(self):
        e = 3 * var("x") + 1
        assert e.terms == {"x": 3.0}
        assert e.constant == 1.0

    def test_multiply_distributes(self):
        e = (var("x") + 2) * 3
        assert e.terms == {"x": 3.0} and e.constant == 6.0

    def test_divide(self):
        e = (var("x") * 4) / 2
        assert e.terms == {"x": 2.0}

    def test_negate(self):
        e = -(var("x") + 1)
        assert e.terms == {"x": -1.0} and e.constant == -1.0

    def test_expr_times_expr_rejected(self):
        with pytest.raises(TypeError):
            var("x") * var("y")  # type: ignore[operator]


class TestEvaluation:
    def test_evaluate(self):
        e = 2 * var("x") - var("y") + 3
        assert e.evaluate({"x": 5.0, "y": 1.0}) == 12.0

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            var("x").evaluate({})

    def test_variables(self):
        assert (var("a") + var("b")).variables == {"a", "b"}

    def test_is_constant(self):
        assert as_expr(5).is_constant()
        assert not var("x").is_constant()

    def test_coefficient(self):
        e = 2 * var("x")
        assert e.coefficient("x") == 2.0
        assert e.coefficient("missing") == 0.0


class TestDisplay:
    def test_str_simple(self):
        assert str(var("x") + var("y")) == "x + y"

    def test_str_negative(self):
        assert str(var("x") - 2 * var("y")) == "x - 2*y"

    def test_str_constant_only(self):
        assert str(as_expr(0)) == "0"

    def test_linear_sum(self):
        e = linear_sum([var("a"), var("b"), 3])
        assert e.terms == {"a": 1.0, "b": 1.0}
        assert e.constant == 3.0

    def test_equality_and_hash(self):
        assert var("x") + 1 == var("x") + 1
        assert hash(var("x")) == hash(var("x"))
        assert var("x") != var("y")
