"""Unit tests for the LP model builder and its matrix form."""

import numpy as np
import pytest

from repro.errors import LPError
from repro.lp.expr import var
from repro.lp.model import Constraint, LinearProgram, Sense


class TestBuilding:
    def test_add_le(self):
        lp = LinearProgram()
        c = lp.add_le(var("x") + var("y"), 4, name="cap")
        assert c.sense is Sense.LE and c.rhs == 4.0

    def test_constants_normalized_to_rhs(self):
        lp = LinearProgram()
        c = lp.add_le(var("x") + 3, 10)
        assert c.lhs.constant == 0.0
        assert c.rhs == 7.0

    def test_expression_on_both_sides(self):
        lp = LinearProgram()
        c = lp.add_ge(var("x"), var("y") + 2)
        assert c.lhs.terms == {"x": 1.0, "y": -1.0}
        assert c.rhs == 2.0

    def test_duplicate_constraint_name_rejected(self):
        lp = LinearProgram()
        lp.add_le(var("x"), 1, name="c")
        with pytest.raises(LPError):
            lp.add_le(var("x"), 2, name="c")

    def test_auto_names_unique(self):
        lp = LinearProgram()
        a = lp.add_le(var("x"), 1)
        b = lp.add_le(var("x"), 2)
        assert a.name != b.name

    def test_variables_in_first_use_order(self):
        lp = LinearProgram()
        lp.minimize(var("z"))
        lp.add_le(var("a") + var("z"), 1)
        assert lp.variables == ("z", "a")

    def test_declare_and_free(self):
        lp = LinearProgram()
        lp.set_free("u")
        assert "u" in lp.variables
        assert "u" in lp.free_variables

    def test_constraint_lookup(self):
        lp = LinearProgram()
        lp.add_eq(var("x"), 1, name="pin")
        assert lp.constraint("pin").rhs == 1.0
        with pytest.raises(LPError):
            lp.constraint("nope")

    def test_str_rendering(self):
        lp = LinearProgram()
        lp.minimize(var("x"))
        lp.add_ge(var("x"), 2, name="lb")
        text = str(lp)
        assert "minimize x" in text and "lb:" in text


class TestConstraintHelpers:
    def test_violation_le(self):
        c = Constraint("c", var("x"), Sense.LE, 5.0)
        assert c.violation({"x": 7.0}) == 2.0
        assert c.violation({"x": 3.0}) == 0.0

    def test_violation_ge(self):
        c = Constraint("c", var("x"), Sense.GE, 5.0)
        assert c.violation({"x": 3.0}) == 2.0

    def test_violation_eq(self):
        c = Constraint("c", var("x"), Sense.EQ, 5.0)
        assert c.violation({"x": 3.0}) == 2.0
        assert c.violation({"x": 7.0}) == 2.0

    def test_normalized(self):
        c = Constraint("c", var("x") + 2, Sense.LE, 5.0).normalized()
        assert c.lhs.constant == 0.0 and c.rhs == 3.0


class TestArrays:
    def test_blocks(self):
        lp = LinearProgram()
        lp.minimize(var("x") + 2 * var("y"))
        lp.add_le(var("x"), 3, name="a")
        lp.add_ge(var("y"), 1, name="b")
        lp.add_eq(var("x") + var("y"), 2, name="c")
        arrays = lp.to_arrays()
        assert arrays.n_variables == 2
        assert arrays.n_constraints == 3
        np.testing.assert_allclose(arrays.c, [1.0, 2.0])
        assert arrays.names_le == ["a"]
        assert arrays.names_ge == ["b"]
        assert arrays.names_eq == ["c"]
        np.testing.assert_allclose(arrays.a_eq, [[1.0, 1.0]])

    def test_free_mask(self):
        lp = LinearProgram()
        lp.set_free("x")
        lp.add_le(var("x") + var("y"), 1)
        arrays = lp.to_arrays()
        assert arrays.free == [True, False]

    def test_check_topological(self):
        lp = LinearProgram()
        lp.add_le(var("x") - var("y"), 1)
        assert lp.check_topological()
        lp.add_le(2 * var("x"), 1)
        assert not lp.check_topological()


class TestCSR:
    def _lp(self):
        lp = LinearProgram()
        lp.minimize(var("x") + 2 * var("y"))
        lp.add_le(var("x") + var("y"), 4, name="a")
        lp.add_ge(var("y") - var("x"), -1, name="b")
        lp.add_eq(var("x") + var("z"), 2, name="c")
        return lp

    def test_to_csr_matches_dense(self):
        lp = self._lp()
        csr = lp.to_csr()
        assert csr.variables == ["x", "y", "z"]
        assert csr.a.shape == (3, 3)
        dense = csr.a.to_dense(site="test")
        np.testing.assert_allclose(
            dense, [[1, 1, 0], [-1, 1, 0], [1, 0, 1]]
        )
        np.testing.assert_allclose(csr.rhs, [4, -1, 2])
        assert csr.names == ["a", "b", "c"]
        assert [s.value for s in csr.senses] == ["<=", ">=", "=="]

    def test_structure_cache_reused_but_rhs_fresh(self):
        lp = self._lp()
        first = lp.to_csr()
        second = lp.to_csr()
        assert first.a is second.a  # cached structure
        clone = lp.with_rhs({"a": 9.0})
        again = clone.to_csr()
        np.testing.assert_allclose(again.rhs, [9, -1, 2])
        np.testing.assert_allclose(
            again.a.to_dense(site="test"), first.a.to_dense(site="test")
        )

    def test_with_rhs_shares_then_copies_on_append(self):
        lp = self._lp()
        clone = lp.with_rhs({"a": 9.0})
        # Appending to either program after cloning must not corrupt the
        # other: the CSR buffers are copy-on-write.
        clone.add_le(var("x") + var("w"), 1, name="d")
        assert lp.to_csr().a.shape == (3, 3)
        csr = clone.to_csr()
        assert csr.a.shape == (4, 4)
        np.testing.assert_allclose(
            csr.a.to_dense(site="test")[3], [1, 0, 0, 1]
        )

    def test_to_arrays_built_from_csr(self):
        lp = self._lp()
        arrays = lp.to_arrays()
        np.testing.assert_allclose(arrays.a_le, [[1, 1, 0]])
        np.testing.assert_allclose(arrays.a_ge, [[-1, 1, 0]])
        np.testing.assert_allclose(arrays.a_eq, [[1, 0, 1]])
