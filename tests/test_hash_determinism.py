"""Cross-interpreter determinism of job signatures.

The devlint DEV2xx rules assert, statically, that signature functions
avoid ``PYTHONHASHSEED``-sensitive constructs.  This test asserts it
*dynamically*: fresh interpreter processes launched with different hash
seeds must produce byte-identical ``job_key`` values and canonical
``mlp_signature`` JSON.  If anyone reintroduces ``hash()``, an unsorted
dict walk, or address-based identity into the signature path, the keys
diverge across seeds and this fails even though every in-process test
still passes (a single process always agrees with itself).
"""

from __future__ import annotations

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Runs in a fresh interpreter per hash seed.  Builds the same design
# twice in different declaration orders (exercising the canonical
# sort paths), then prints every signature artifact we require to be
# process-invariant.
_PROBE = """
import json

from repro.circuit.builder import CircuitBuilder
from repro.core.constraints import ConstraintOptions
from repro.core.mlp import MLPOptions
from repro.engine.jobspec import (
    MinimizeJob,
    SweepJob,
    job_key,
    mlp_signature,
    options_signature,
)


def build(reversed_order):
    b = CircuitBuilder(phases=["phi1", "phi2"])
    names = ["A", "B", "C"] if not reversed_order else ["C", "B", "A"]
    for name in names:
        phase = "phi1" if name in ("A", "C") else "phi2"
        b.latch(name, phase=phase, setup=2, delay=3.25)
    paths = [("A", "B", 10.0), ("B", "C", 7.5), ("C", "A", 12.125)]
    if reversed_order:
        paths.reverse()
    for src, dst, delay in paths:
        b.path(src, dst, delay)
    return b.build()


mlp = MLPOptions()
jobs = [
    MinimizeJob(graph=build(False), mlp=mlp, label="probe"),
    MinimizeJob(graph=build(True), mlp=mlp, label="probe"),
    MinimizeJob(graph=build(False), arc_override=("A", "B", 11.0)),
    SweepJob(graph=build(False), src="A", dst="B",
             grid=(8.0, 9.0, 10.0, 11.0, 12.0)),
]
lines = [job_key(job) for job in jobs]
lines.append(json.dumps(mlp_signature(mlp), sort_keys=True))
lines.append(json.dumps(options_signature(ConstraintOptions()),
                        sort_keys=True))
print("\\n".join(lines))
"""


def _probe(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [sys.executable, "-c", _PROBE],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestHashSeedInvariance:
    def test_job_keys_identical_across_hash_seeds(self):
        outputs = {seed: _probe(seed) for seed in ("0", "1", "4242")}
        baseline = outputs["0"]
        assert baseline.strip(), "probe produced no output"
        for seed, output in outputs.items():
            assert output == baseline, (
                f"signatures diverge under PYTHONHASHSEED={seed}:\n"
                f"seed 0 ->\n{baseline}\nseed {seed} ->\n{output}"
            )

    def test_probe_canonicalizes_declaration_order(self):
        # Lines 0 and 1 are the same circuit declared in two orders.
        lines = _probe("0").splitlines()
        assert lines[0] == lines[1]
        # The arc override must still change the key.
        assert lines[2] != lines[0]
