"""Tests for worst-case skew-aware constraint generation and analysis.

The soundness property: a schedule produced by skew-aware optimization
must meet every setup requirement at *every* corner of the skew box --
each phase independently early or late by its bound -- as judged by the
plain (skew-oblivious) analyzer.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.generate import random_multiloop_circuit
from repro.clocking.skew import SkewBound, worst_case_schedules
from repro.core.analysis import analyze
from repro.core.constraints import ConstraintOptions, build_program
from repro.core.mlp import minimize_cycle_time
from repro.designs import example1


def skew_options(graph, early=1.0, late=1.0):
    return ConstraintOptions(
        skew={name: SkewBound(early, late) for name in graph.phase_names}
    )


class TestConstraintShape:
    def test_xs_family_generated(self, ex1):
        smo = build_program(ex1, skew_options(ex1))
        assert len(smo.family("XS")) == 4  # one floor per latch

    def test_no_xs_without_skew(self, ex1):
        assert build_program(ex1).family("XS") == []

    def test_setup_rows_tightened(self, ex1):
        plain = build_program(ex1)
        skewed = build_program(ex1, skew_options(ex1, early=2.0, late=0.0))
        assert (
            skewed.program.constraint("L1[L1]").rhs
            == plain.program.constraint("L1[L1]").rhs - 2.0
        )

    def test_c3_rows_padded(self, ex1):
        plain = build_program(ex1)
        skewed = build_program(ex1, skew_options(ex1, early=1.0, late=2.0))
        assert (
            skewed.program.constraint("C3[phi2/phi1]").rhs
            == plain.program.constraint("C3[phi2/phi1]").rhs + 3.0
        )

    def test_ff_pins_move_to_late_edge(self):
        from repro.circuit.builder import CircuitBuilder

        b = CircuitBuilder(["phi1", "phi2"])
        b.flipflop("F", phase="phi1", edge="rise")
        b.latch("L", phase="phi2")
        b.path("F", "L", 5)
        g = b.build()
        smo = build_program(g, skew_options(g, late=0.7))
        assert smo.program.constraint("FF[F]").rhs == pytest.approx(0.7)

    def test_still_topological(self, ex1):
        build_program(ex1, skew_options(ex1)).assert_topological()


class TestOptimization:
    def test_skew_never_helps_and_eventually_costs(self, ex1):
        # Small skews can be absorbed by slack in the phase placement
        # (2 ns skew at Delta_41 = 80 is free); large ones must cost.
        base = minimize_cycle_time(ex1).period
        small = minimize_cycle_time(ex1, skew_options(ex1, 2.0, 2.0)).period
        large = minimize_cycle_time(ex1, skew_options(ex1, 5.0, 5.0)).period
        assert small >= base - 1e-9
        assert large > base
        assert large == pytest.approx(120.0)

    def test_skew_binds_on_the_flat_segment(self):
        # At Delta_41 = 0 the 80 ns floor is a single-stage bound with no
        # slack to hide skew in: every nanosecond of skew box costs.
        g = example1(0.0)
        assert minimize_cycle_time(g, skew_options(g, 2.0, 2.0)).period == (
            pytest.approx(88.0)
        )

    def test_zero_skew_is_identity(self, ex1):
        base = minimize_cycle_time(ex1).period
        zero = minimize_cycle_time(ex1, skew_options(ex1, 0.0, 0.0)).period
        assert zero == pytest.approx(base)

    def test_result_verifies_under_skew_aware_analysis(self, ex1):
        options = skew_options(ex1, 1.5, 1.5)
        result = minimize_cycle_time(ex1, options)
        assert analyze(ex1, result.schedule, options).feasible

    def test_nominal_optimum_fails_skew_aware_analysis(self, ex1):
        # The unprotected optimal schedule has zero margin: demanding skew
        # robustness on top of it must expose violations.
        result = minimize_cycle_time(ex1)
        report = analyze(ex1, result.schedule, skew_options(ex1, 2.0, 2.0))
        assert not report.feasible


class TestCornerSoundness:
    def _setup_ok_at_corners(self, graph, schedule, bounds):
        for corner in worst_case_schedules(schedule, bounds):
            report = analyze(graph, corner)
            # Corner schedules may break the C2 labeling convention; the
            # physical requirements are the setup slacks and convergence.
            if report.divergent_cycle is not None or report.setup_violations:
                return False
        return True

    def test_example1_corners_protected(self):
        g = example1(80.0)
        bounds = {name: SkewBound(1.0, 1.0) for name in g.phase_names}
        protected = minimize_cycle_time(g, ConstraintOptions(skew=bounds))
        assert self._setup_ok_at_corners(g, protected.schedule, bounds)

    def test_example1_nominal_not_protected(self):
        g = example1(80.0)
        bounds = {name: SkewBound(1.0, 1.0) for name in g.phase_names}
        nominal = minimize_cycle_time(g)
        assert not self._setup_ok_at_corners(g, nominal.schedule, bounds)

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(3, 7),
        seed=st.integers(0, 9999),
        early=st.floats(0.0, 2.0),
        late=st.floats(0.0, 2.0),
    )
    def test_random_circuits_protected(self, n, seed, early, late):
        g = random_multiloop_circuit(n, n_extra_arcs=2, k=2, seed=seed)
        bounds = {name: SkewBound(early, late) for name in g.phase_names}
        result = minimize_cycle_time(g, ConstraintOptions(skew=bounds))
        assert self._setup_ok_at_corners(g, result.schedule, bounds)
