"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.core.mlp import minimize_cycle_time
from repro.designs import example1
from repro.lang.writer import write_circuit


@pytest.fixture
def ex1_file(tmp_path):
    path = tmp_path / "ex1.lcd"
    path.write_text(write_circuit(example1(80.0)))
    return str(path)


@pytest.fixture
def ex1_with_clock(tmp_path):
    g = example1(80.0)
    schedule = minimize_cycle_time(g).schedule
    path = tmp_path / "ex1_clocked.lcd"
    path.write_text(write_circuit(g, schedule))
    return str(path)


class TestMinimize:
    def test_prints_optimum(self, ex1_file, capsys):
        assert main(["minimize", ex1_file]) == 0
        out = capsys.readouterr().out
        assert "optimal cycle time: 110" in out

    def test_nrip_flag(self, ex1_file, capsys):
        assert main(["minimize", ex1_file, "--nrip"]) == 0
        out = capsys.readouterr().out
        assert "NRIP" in out
        assert "120" in out

    def test_critical_and_strips(self, ex1_file, capsys):
        assert main(["minimize", ex1_file, "--critical", "--strips"]) == 0
        out = capsys.readouterr().out
        assert "critical segments" in out
        assert "D=" in out

    def test_svg_and_write_outputs(self, ex1_file, tmp_path, capsys):
        svg = tmp_path / "out.svg"
        lcd = tmp_path / "solved.lcd"
        assert main(
            ["minimize", ex1_file, "--svg", str(svg), "--write", str(lcd)]
        ) == 0
        assert svg.read_text().startswith("<svg")
        assert "period" in lcd.read_text()

    def test_dot_and_lp_exports(self, ex1_file, tmp_path, capsys):
        dot = tmp_path / "circuit.dot"
        lp = tmp_path / "system.lp"
        assert main(
            ["minimize", ex1_file, "--dot", str(dot), "--lp", str(lp)]
        ) == 0
        assert dot.read_text().startswith("digraph")
        assert "Subject To" in lp.read_text()

    def test_infeasible_max_period_is_an_error(self, ex1_file, capsys):
        code = main(["minimize", ex1_file, "--max-period", "50"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["minimize", "/nonexistent.lcd"]) == 2


class TestAnalyze:
    def test_feasible_schedule(self, ex1_with_clock, capsys):
        assert main(["analyze", ex1_with_clock]) == 0
        assert "feasible: True" in capsys.readouterr().out

    def test_hold_flag(self, ex1_with_clock, capsys):
        assert main(["analyze", ex1_with_clock, "--hold"]) == 0
        assert "hold: clean" in capsys.readouterr().out

    def test_structural_file_rejected(self, ex1_file, capsys):
        assert main(["analyze", ex1_file]) == 2
        assert "no concrete schedule" in capsys.readouterr().err

    def test_infeasible_schedule_exit_code(self, tmp_path, capsys):
        g = example1(80.0)
        bad = minimize_cycle_time(g).schedule.scaled(0.9)
        path = tmp_path / "bad.lcd"
        path.write_text(write_circuit(g, bad))
        assert main(["analyze", str(path)]) == 1


class TestSweepTuneBaselines:
    def test_sweep_grid(self, ex1_file, capsys):
        assert main(
            ["sweep", ex1_file, "L4", "L1", "--lo", "0", "--hi", "140"]
        ) == 0
        out = capsys.readouterr().out
        assert "slope 0.5" in out
        assert "breakpoints" in out

    def test_sweep_exact(self, ex1_file, capsys):
        assert main(
            ["sweep", ex1_file, "L4", "L1", "--lo", "0", "--hi", "140", "--exact"]
        ) == 0
        out = capsys.readouterr().out
        assert "[20." in out or "20.0" in out

    def test_tune_feasible(self, ex1_file, capsys):
        assert main(["tune", ex1_file, "--period", "130"]) == 0
        assert "slack" in capsys.readouterr().out

    def test_tune_setup_bound_failure(self, tmp_path, capsys):
        path = tmp_path / "flat.lcd"
        path.write_text(write_circuit(example1(0.0)))
        assert main(["tune", str(path), "--period", "75"]) == 1

    def test_baselines_table(self, ex1_file, capsys):
        assert main(["baselines", ex1_file]) == 0
        out = capsys.readouterr().out
        assert "MLP (optimal)" in out
        assert "edge-triggered" in out
        assert "NRIP" in out
