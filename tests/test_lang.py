"""Unit and property tests for the circuit-description language."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.generate import random_multiloop_circuit
from repro.errors import ParseError
from repro.lang.lexer import TokenKind, tokenize
from repro.lang.parser import parse_circuit
from repro.lang.writer import write_circuit

EXAMPLE1_TEXT = """
# Example 1 of the paper (Fig. 5)
clock { phase phi1; phase phi2; }
latch L1 phase phi1 setup 10 delay 10;
latch L2 phase phi2 setup 10 delay 10;
latch L3 phase phi1 setup 10 delay 10;
latch L4 phase phi2 setup 10 delay 10;
path L1 -> L2 delay 20 label "La";
path L2 -> L3 delay 20 label "Lb";
path L3 -> L4 delay 60 label "Lc";
path L4 -> L1 delay 80 label "Ld";
"""


class TestLexer:
    def test_token_kinds(self):
        toks = tokenize('latch L1 { } ; -> 3.5 "hi"')
        kinds = [t.kind for t in toks]
        assert kinds == [
            TokenKind.IDENT,
            TokenKind.IDENT,
            TokenKind.LBRACE,
            TokenKind.RBRACE,
            TokenKind.SEMI,
            TokenKind.ARROW,
            TokenKind.NUMBER,
            TokenKind.STRING,
            TokenKind.EOF,
        ]

    def test_comments_skipped(self):
        toks = tokenize("a # comment\nb // another\nc")
        assert [t.text for t in toks[:-1]] == ["a", "b", "c"]

    def test_line_numbers(self):
        toks = tokenize("a\n  b")
        assert toks[0].line == 1
        assert toks[1].line == 2 and toks[1].column == 3

    def test_numbers(self):
        toks = tokenize("1 2.5 -3 +4.0 1e3 2.5e-2")
        values = [t.number for t in toks[:-1]]
        assert values == [1.0, 2.5, -3.0, 4.0, 1000.0, 0.025]

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('"oops')

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("a $ b")

    def test_number_accessor_type_check(self):
        tok = tokenize("abc")[0]
        with pytest.raises(ParseError):
            tok.number


class TestParser:
    def test_example1_parses(self):
        decl = parse_circuit(EXAMPLE1_TEXT)
        g = decl.to_graph()
        assert g.l == 4
        assert g.arc("L4", "L1").delay == 80.0
        assert g.arc("L1", "L2").label == "La"

    def test_clock_with_period_and_geometry(self):
        decl = parse_circuit(
            """
            clock {
              period 100;
              phase phi1 start 0 width 25;
              phase phi2 start 50 width 25;
            }
            latch L phase phi1;
            """
        )
        schedule = decl.to_schedule()
        assert schedule is not None
        assert schedule.period == 100.0
        assert schedule["phi2"].start == 50.0

    def test_structural_clock_has_no_schedule(self):
        decl = parse_circuit("clock { phase a; } latch L phase a;")
        assert decl.to_schedule() is None

    def test_flipflop_with_edge(self):
        decl = parse_circuit(
            "clock { phase a; } flipflop F phase a edge fall setup 1;"
        )
        g = decl.to_graph()
        assert not g["F"].is_latch
        assert g["F"].edge.value == "fall"

    def test_min_delay(self):
        decl = parse_circuit(
            """
            clock { phase a; phase b; }
            latch X phase a; latch Y phase b;
            path X -> Y delay 10 min 3;
            """
        )
        assert decl.to_graph().arc("X", "Y").min_delay == 3.0

    @pytest.mark.parametrize(
        "bad",
        [
            "latch L phase a;",  # no clock block
            "clock { } latch L phase a;",  # no phases
            "clock { phase a; } latch phase a;",  # missing name
            "clock { phase a; } latch L phase a setup;",  # missing value
            "clock { phase a; } path X -> Y;",  # missing delay
            "clock { phase a; } latch L phase a edge rise;",  # edge on latch
            "clock { phase a; } gadget G phase a;",  # unknown decl
            "clock { phase a; } flipflop F phase a edge diagonal;",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(ParseError):
            parse_circuit(bad)

    def test_error_carries_location(self):
        try:
            parse_circuit("clock { phase a; }\nlatch L phase ;")
        except ParseError as err:
            assert err.line == 2
        else:  # pragma: no cover
            pytest.fail("expected ParseError")

    def test_semantic_error_unknown_phase(self):
        from repro.errors import CircuitError

        decl = parse_circuit("clock { phase a; } latch L phase qq;")
        with pytest.raises(CircuitError):
            decl.to_graph()


class TestRoundTrip:
    def test_example1_roundtrip(self):
        g = parse_circuit(EXAMPLE1_TEXT).to_graph()
        text = write_circuit(g)
        g2 = parse_circuit(text).to_graph()
        assert g2.phase_names == g.phase_names
        assert set(g2.names) == set(g.names)
        assert set(g2.arcs) == set(g.arcs)

    def test_schedule_roundtrip(self):
        from repro.clocking.library import two_phase_clock
        g = parse_circuit(EXAMPLE1_TEXT).to_graph()
        schedule = two_phase_clock(100.0)
        text = write_circuit(g, schedule)
        decl = parse_circuit(text)
        assert decl.to_schedule() == schedule

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(2, 8),
        extra=st.integers(0, 5),
        k=st.integers(2, 4),
        seed=st.integers(0, 99999),
    )
    def test_random_circuits_roundtrip(self, n, extra, k, seed):
        g = random_multiloop_circuit(n, n_extra_arcs=extra, k=k, seed=seed)
        g2 = parse_circuit(write_circuit(g)).to_graph()
        assert g2.phase_names == g.phase_names
        assert {s.name: s for s in g2.synchronizers} == {
            s.name: s for s in g.synchronizers
        }
        assert set(g2.arcs) == set(g.arcs)
