"""Unit tests for the gate-level substrate: cells, netlist, STA, extraction."""

import pytest

from repro.core.mlp import minimize_cycle_time
from repro.errors import CircuitError, ParseError
from repro.netlist.cells import (
    Cell,
    CellKind,
    comb_cell,
    default_library,
    parse_library,
)
from repro.netlist.extract import extract_timing_graph
from repro.netlist.netlist import Netlist
from repro.netlist.sta import PRIMARY, combinational_delays


@pytest.fixture
def lib():
    return default_library()


class TestCells:
    def test_default_library_contents(self, lib):
        assert "NAND2" in lib and "DLATCH" in lib and "DFF" in lib
        assert len(lib) >= 15

    def test_comb_cell_arcs(self):
        c = comb_cell("G", ("A", "B"), ("Z",), (0.1, 0.2))
        assert c.arcs[("A", "Z")] == (0.1, 0.2)
        assert c.pins == ("A", "B", "Z")

    def test_bad_arc_pins_rejected(self):
        with pytest.raises(CircuitError):
            Cell(
                "G",
                CellKind.COMB,
                inputs=("A",),
                outputs=("Z",),
                arcs={("X", "Z"): (0, 1)},
            )

    def test_min_above_max_rejected(self):
        with pytest.raises(CircuitError):
            Cell(
                "G",
                CellKind.COMB,
                inputs=("A",),
                outputs=("Z",),
                arcs={("A", "Z"): (2, 1)},
            )

    def test_sequential_validation(self):
        with pytest.raises(CircuitError):
            Cell("L", CellKind.LATCH, dq_delay=(0.2, 0.1))
        with pytest.raises(CircuitError):
            Cell("L", CellKind.LATCH, setup=-1.0)

    def test_duplicate_cell_rejected(self, lib):
        with pytest.raises(CircuitError):
            lib.add(comb_cell("INV", ("A",), ("Z",), (0, 0)))

    def test_unknown_cell_lookup(self, lib):
        with pytest.raises(CircuitError):
            lib["MISSING"]


class TestLibraryParser:
    TEXT = """
    library fast {
      cell NAND2x { input A B; output Z;
        delay A -> Z 0.03 0.06; delay B -> Z 0.04 0.07; }
      latch DLAT { delay 0.04 0.08; setup 0.06; hold 0.02; }
      ff DFFX { delay 0.05 0.1; setup 0.08; hold 0.02; edge fall; }
    }
    """

    def test_parses(self):
        lib = parse_library(self.TEXT)
        assert lib.name == "fast"
        nand = lib["NAND2x"]
        assert nand.arcs[("B", "Z")] == (0.04, 0.07)
        assert lib["DLAT"].kind is CellKind.LATCH
        assert lib["DFFX"].edge == "fall"

    def test_rejects_bad_edge(self):
        with pytest.raises(ParseError):
            parse_library("library l { ff F { delay 0 0; edge up; } }")

    def test_rejects_unknown_attr(self):
        with pytest.raises(ParseError):
            parse_library("library l { cell C { wobble 3; } }")


class TestNetlist:
    def test_single_driver_enforced(self, lib):
        nl = Netlist("t", lib)
        nl.add("u1", "INV", A="a", Z="y")
        with pytest.raises(CircuitError):
            nl.add("u2", "INV", A="b", Z="y")

    def test_input_cannot_shadow_driver(self, lib):
        nl = Netlist("t", lib)
        nl.add("u1", "INV", A="a", Z="y")
        with pytest.raises(CircuitError):
            nl.add_input("y")

    def test_unconnected_pin_rejected(self, lib):
        nl = Netlist("t", lib)
        with pytest.raises(CircuitError):
            nl.add("u1", "NAND2", A="a", Z="y")  # B missing

    def test_unknown_pin_rejected(self, lib):
        nl = Netlist("t", lib)
        with pytest.raises(CircuitError):
            nl.add("u1", "INV", A="a", Q="y", Z="z")

    def test_duplicate_instance_rejected(self, lib):
        nl = Netlist("t", lib)
        nl.add("u1", "INV", A="a", Z="y")
        with pytest.raises(CircuitError):
            nl.add("u1", "INV", A="y", Z="w")

    def test_lint_reports_undriven(self, lib):
        nl = Netlist("t", lib)
        nl.add("u1", "INV", A="floating", Z="y")
        assert any("floating" in p for p in nl.check())

    def test_loads_and_driver(self, lib):
        nl = Netlist("t", lib)
        nl.add_input("a")
        nl.add("u1", "INV", A="a", Z="y")
        nl.add("u2", "BUF", A="y", Z="z")
        assert nl.driver_of("y") == ("u1", "Z")
        assert nl.driver_of("a") == ("", "")
        assert [i.name for i, _ in nl.loads_of("y")] == ["u2"]


class TestSTA:
    def build_two_latch(self, lib, extra_stage=False):
        nl = Netlist("t", lib)
        nl.add_input("clk1")
        nl.add_input("clk2")
        nl.add("l1", "DLATCH", D="back", G="clk1", Q="q1")
        nl.add("g1", "NAND2", A="q1", B="q1", Z="n1")
        if extra_stage:
            nl.add("g1b", "INV", A="n1", Z="n1b")
            nl.add("g2", "XOR2", A="n1b", B="q1", Z="n2")
        else:
            nl.add("g2", "XOR2", A="n1", B="q1", Z="n2")
        nl.add("l2", "DLATCH", D="n2", G="clk2", Q="q2")
        nl.add("g3", "INV", A="q2", Z="back")
        return nl

    def test_min_max_paths(self, lib):
        nl = self.build_two_latch(lib)
        delays = {(p.start, p.end): p for p in combinational_delays(nl)}
        forward = delays[("l1", "l2")]
        # max: NAND2 (0.06) + XOR2 (0.11); min: direct XOR2 (0.05).
        assert forward.max_delay == pytest.approx(0.17)
        assert forward.min_delay == pytest.approx(0.05)
        back = delays[("l2", "l1")]
        assert back.max_delay == pytest.approx(0.04)

    def test_primary_input_paths_labeled(self, lib):
        nl = Netlist("t", lib)
        nl.add_input("clk")
        nl.add_input("din")
        nl.add("g", "BUF", A="din", Z="d1")
        nl.add("l", "DLATCH", D="d1", G="clk", Q="q")
        nl.add_output("q")
        starts = {p.start for p in combinational_delays(nl)}
        assert PRIMARY in starts

    def test_combinational_loop_detected(self, lib):
        nl = Netlist("t", lib)
        nl.add("g1", "INV", A="b", Z="a")
        nl.add("g2", "INV", A="a", Z="b")
        with pytest.raises(CircuitError, match="combinational loop"):
            combinational_delays(nl)

    def test_parallel_paths_merge(self, lib):
        nl = Netlist("t", lib)
        nl.add_input("clk")
        nl.add("l1", "DLATCH", D="x", G="clk", Q="q")
        nl.add("fast", "INV", A="q", Z="m")
        nl.add("slow", "XOR2", A="q", B="q", Z="s")
        nl.add("join", "NAND2", A="m", B="s", Z="x")
        (path,) = [
            p for p in combinational_delays(nl) if p.start == "l1" and p.end == "l1"
        ]
        assert path.max_delay == pytest.approx(0.11 + 0.06)
        assert path.min_delay == pytest.approx(0.02 + 0.03)


class TestExtraction:
    def test_extracted_graph_structure(self, lib):
        sta = TestSTA()
        nl = sta.build_two_latch(lib, extra_stage=True)
        g = extract_timing_graph(nl, {"clk1": "phi1", "clk2": "phi2"})
        assert g.l == 2
        assert g.arc("l1", "l2").delay == pytest.approx(0.06 + 0.04 + 0.11)
        assert g["l1"].setup == lib["DLATCH"].setup

    def test_extraction_pipeline_to_mlp(self, lib):
        sta = TestSTA()
        nl = sta.build_two_latch(lib)
        g = extract_timing_graph(nl, {"clk1": "phi1", "clk2": "phi2"})
        result = minimize_cycle_time(g)
        assert result.period > 0
        assert result.feasible

    def test_missing_clock_mapping_rejected(self, lib):
        sta = TestSTA()
        nl = sta.build_two_latch(lib)
        with pytest.raises(CircuitError, match="no phase mapping"):
            extract_timing_graph(nl, {"clk1": "phi1"})

    def test_declared_phase_order_respected(self, lib):
        sta = TestSTA()
        nl = sta.build_two_latch(lib)
        g = extract_timing_graph(
            nl, {"clk1": "phi1", "clk2": "phi2"}, phases=["phi1", "phi2"]
        )
        assert g.phase_names == ("phi1", "phi2")

    def test_phase_not_in_declared_list_rejected(self, lib):
        sta = TestSTA()
        nl = sta.build_two_latch(lib)
        with pytest.raises(CircuitError):
            extract_timing_graph(
                nl, {"clk1": "phi1", "clk2": "phi9"}, phases=["phi1", "phi2"]
            )

    def test_no_sequential_cells_rejected(self, lib):
        nl = Netlist("t", lib)
        nl.add("g", "INV", A="a", Z="b")
        with pytest.raises(CircuitError):
            extract_timing_graph(nl, {})

    def test_primary_io_strictness(self, lib):
        nl = Netlist("t", lib)
        nl.add_input("clk")
        nl.add_input("din")
        nl.add("l", "DLATCH", D="din", G="clk", Q="q")
        nl.add_output("q")
        extract_timing_graph(nl, {"clk": "phi1"})  # lenient: ok
        with pytest.raises(CircuitError):
            extract_timing_graph(nl, {"clk": "phi1"}, ignore_primary_io=False)

    def test_flipflop_extraction(self, lib):
        nl = Netlist("t", lib)
        nl.add_input("ck")
        nl.add_input("gk")
        nl.add("f", "DFFN", D="q2", CK="ck", Q="q1")
        nl.add("l", "DLATCH", D="q1", G="gk", Q="q2")
        g = extract_timing_graph(nl, {"ck": "phi1", "gk": "phi2"})
        assert not g["f"].is_latch
        assert g["f"].edge.value == "fall"
