"""Regression tests for the GaAs MIPS case study (Figs. 10-11, Table I)."""

import pytest

from repro.core.analysis import analyze
from repro.core.constraints import build_program
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.designs.gaas import (
    GAAS_OPTIMAL_PERIOD,
    GAAS_TARGET_PERIOD,
    TRANSISTOR_COUNTS,
    TRANSISTOR_TOTAL,
    gaas_datapath,
)
from repro.lp.backends import available_backends
from repro.sim import simulate


class TestStructure:
    def test_18_synchronizers(self, gaas):
        # "consists of 18 synchronizing elements, 15 of which are
        # level-sensitive latches."
        assert gaas.l == 18
        assert len(gaas.latches) == 15
        assert len(gaas.flipflops) == 3

    def test_three_phase_clock(self, gaas):
        assert gaas.k == 3

    def test_91_constraints(self, gaas):
        # "The number of constraints for this example was 91."
        smo = build_program(gaas)
        assert smo.paper_constraint_count == 91

    def test_no_direct_paths_between_phi1_and_phi3(self, gaas):
        # "there are no direct paths in the circuit between these two
        # phases (i.e., K13 = K31 = 0)."
        k = gaas.k_matrix()
        assert k[0][2] == 0
        assert k[2][0] == 0

    def test_topological_coefficients(self, gaas):
        build_program(gaas).assert_topological()


class TestOptimalSchedule:
    def test_cycle_time_is_4_4ns(self, gaas):
        # "The optimal cycle time found by MLP (4.4 ns) is 10% higher than
        # the target cycle time of 4 ns."
        result = minimize_cycle_time(gaas)
        assert result.period == pytest.approx(GAAS_OPTIMAL_PERIOD)
        assert result.period / GAAS_TARGET_PERIOD == pytest.approx(1.10)

    @pytest.mark.parametrize("backend", available_backends())
    def test_phi3_totally_overlapped_by_phi1(self, gaas, backend):
        # "Phase phi3 in the optimal clock schedule is completely
        # overlapped by phi1."
        schedule = minimize_cycle_time(gaas, mlp=MLPOptions(backend=backend)).schedule
        p1, p3 = schedule["phi1"], schedule["phi3"]
        assert p3.start >= p1.start - 1e-9
        assert p3.end <= p1.end + 1e-9

    def test_schedule_verifies_and_simulates(self, gaas):
        result = minimize_cycle_time(gaas)
        assert analyze(gaas, result.schedule).feasible
        sim = simulate(gaas, result.schedule)
        assert sim.feasible

    def test_target_period_is_infeasible(self, gaas):
        # 4.0 ns cannot be met: the model is 10% away from target.
        from repro.core.constraints import ConstraintOptions
        from repro.errors import InfeasibleError

        with pytest.raises(InfeasibleError):
            minimize_cycle_time(
                gaas, ConstraintOptions(max_period=GAAS_TARGET_PERIOD)
            )

    def test_precharge_latch_on_phi3(self, gaas):
        assert gaas["PRE"].phase == "phi3"


class TestTableI:
    def test_block_counts(self):
        assert TRANSISTOR_COUNTS["Register File (RF)"] == 16085
        assert TRANSISTOR_COUNTS["Arithmetic/Logic Unit (ALU)"] == 3419
        assert TRANSISTOR_COUNTS["Shifter"] == 1848
        assert TRANSISTOR_COUNTS["Integer Multiply/Divide (IMD)"] == 6874
        assert TRANSISTOR_COUNTS["Load Aligner"] == 1922

    def test_total_matches_published_sum(self):
        assert sum(TRANSISTOR_COUNTS.values()) == TRANSISTOR_TOTAL == 30148

    def test_register_file_is_majority(self):
        # "The data path contains roughly 30 000 transistors, the majority
        # of which are in the register file."
        rf = TRANSISTOR_COUNTS["Register File (RF)"]
        assert rf > TRANSISTOR_TOTAL / 2
