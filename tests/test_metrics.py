"""Tests for the metrics registry, exposition, dashboard and bench gate."""

from __future__ import annotations

import asyncio
import json
import math

import pytest

from repro.cli import main
from repro.obs import metrics
from repro.obs.bench import (
    BenchError,
    compare,
    compare_entries,
    load_trajectory,
    record,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullMetric,
    parse_prometheus_text,
    quantile_from_buckets,
)
from repro.obs.top import MetricsView, bucket_delta, render_dashboard, run_top
from repro.serve.service import AnalysisService, latency_percentiles

MIN_EX1 = {"kind": "minimize", "design": "example1"}


@pytest.fixture(autouse=True)
def _clean_metrics_state():
    metrics.reset(enabled=False)
    yield
    metrics.reset(enabled=False)


# ----------------------------------------------------------------------
# Registry core
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_inc_and_labels(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("hits_total", kind="a").inc()
        reg.counter("hits_total", kind="a").inc(2.0)
        reg.counter("hits_total", kind="b").inc()
        assert reg.find("hits_total", kind="a").value == 3.0
        assert reg.find("hits_total", kind="b").value == 1.0
        assert reg.find("hits_total", kind="c") is None

    def test_label_order_does_not_split_series(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("x_total", a="1", b="2").inc()
        reg.counter("x_total", b="2", a="1").inc()
        assert len(list(reg.collect())) == 1
        assert reg.find("x_total", b="2", a="1").value == 2.0

    def test_gauge_set_and_dec(self):
        reg = MetricsRegistry(enabled=True)
        g = reg.gauge("depth")
        g.set(5.0)
        g.dec()
        assert reg.find("depth").value == 4.0

    def test_disabled_registry_returns_null_singleton(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x_total")
        assert isinstance(c, NullMetric)
        assert c is reg.histogram("y_seconds")  # shared singleton
        c.inc()
        c.observe(1.0)
        c.set(2.0)  # all no-ops
        assert list(reg.collect()) == []
        assert not c

    def test_module_level_helpers_respect_enable_state(self):
        metrics.inc("mod_total")  # disabled: swallowed
        assert list(metrics.get_registry().collect()) == []
        metrics.reset(enabled=True)
        metrics.inc("mod_total")
        metrics.observe("mod_seconds", 0.5)
        metrics.set_gauge("mod_depth", 3.0)
        names = {m.name for m in metrics.get_registry().collect()}
        assert names == {"mod_total", "mod_seconds", "mod_depth"}

    def test_enable_does_not_clear_accumulated_values(self):
        metrics.reset(enabled=True)
        metrics.inc("kept_total")
        metrics.enable()  # unlike trace.enable(), must not reset
        assert metrics.get_registry().find("kept_total").value == 1.0

    def test_thread_local_registry_override(self):
        metrics.reset(enabled=False)
        private = MetricsRegistry(enabled=True)
        with metrics.use_registry(private):
            metrics.inc("scoped_total")
        assert private.find("scoped_total").value == 1.0
        assert metrics.get_registry().find("scoped_total") is None


# ----------------------------------------------------------------------
# Histogram math
# ----------------------------------------------------------------------
class TestHistogram:
    def test_observe_counts_and_sum(self):
        h = Histogram("t_seconds", (), bounds=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(56.05)
        assert list(h.counts) == [1, 2, 1, 1]  # last is overflow

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram("t_seconds", (), bounds=(1.0, 2.0, 4.0))
        for _ in range(100):
            h.observe(1.5)  # all land in the (1, 2] bucket
        q = h.quantile(0.5)
        assert 1.0 <= q <= 2.0

    def test_quantile_monotone(self):
        h = Histogram("t_seconds", (), bounds=tuple(LATENCY_BUCKETS))
        for i in range(1, 200):
            h.observe(0.0001 * i)
        qs = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert qs == sorted(qs)

    def test_quantile_empty_is_zero(self):
        h = Histogram("t_seconds", (), bounds=(1.0,))
        assert h.quantile(0.5) == 0.0

    def test_quantile_from_buckets_matches_histogram(self):
        h = Histogram("t_seconds", (), bounds=(0.5, 1.0, 2.0))
        for v in (0.1, 0.7, 0.8, 1.5, 3.0):
            h.observe(v)
        pairs = []
        cum = 0.0
        for bound, n in zip(list(h.bounds) + [math.inf], h.counts):
            cum += n
            pairs.append((bound, cum))
        for q in (0.25, 0.5, 0.9):
            assert quantile_from_buckets(pairs, q) == pytest.approx(
                h.quantile(q)
            )


# ----------------------------------------------------------------------
# Snapshot / drain / merge (the cross-process transport)
# ----------------------------------------------------------------------
class TestMerge:
    def test_drain_zeroes_but_keeps_instruments(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("c_total").inc(5)
        reg.histogram("h_seconds").observe(0.1)
        snap = reg.drain()
        assert {s["name"] for s in snap} == {"c_total", "h_seconds"}
        assert reg.find("c_total").value == 0.0
        assert reg.find("h_seconds").count == 0
        reg.counter("c_total").inc()  # same instrument object still live
        assert reg.find("c_total").value == 1.0

    def test_merge_adds_counters_and_histograms(self):
        a = MetricsRegistry(enabled=True)
        b = MetricsRegistry(enabled=True)
        for reg, n in ((a, 2), (b, 3)):
            reg.counter("c_total", k="x").inc(n)
            for _ in range(n):
                reg.histogram("h_seconds").observe(0.01)
        a.merge(b.snapshot())
        assert a.find("c_total", k="x").value == 5.0
        assert a.find("h_seconds").count == 5

    def test_merge_gauge_last_writer_wins(self):
        a = MetricsRegistry(enabled=True)
        b = MetricsRegistry(enabled=True)
        a.gauge("depth").set(1.0)
        b.gauge("depth").set(7.0)
        a.merge(b.snapshot())
        assert a.find("depth").value == 7.0

    def test_merge_mismatched_bounds_reobserves_at_edges(self):
        a = MetricsRegistry(enabled=True)
        a.histogram("h_seconds", buckets=(1.0, 2.0)).observe(0.5)
        b = MetricsRegistry(enabled=True)
        b.histogram("h_seconds", buckets=(10.0,)).observe(5.0)
        a.merge(b.snapshot())
        merged = a.find("h_seconds")
        # counts are exact; the sum degrades to the bucket upper edge
        # (0.5 locally + the skewed observation clamped to le=10)
        assert merged.count == 2
        assert merged.sum == pytest.approx(10.5)

    def test_module_merge_noop_when_disabled(self):
        src = MetricsRegistry(enabled=True)
        src.counter("c_total").inc()
        metrics.merge(src.snapshot())  # global registry is disabled
        assert list(metrics.get_registry().collect()) == []


# ----------------------------------------------------------------------
# Prometheus exposition + parser round trip
# ----------------------------------------------------------------------
class TestExposition:
    def test_counter_and_gauge_text(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("jobs_total", kind="minimize").inc(4)
        reg.gauge("depth").set(2.0)
        text = reg.to_prometheus()
        assert "# TYPE repro_jobs_total counter" in text
        assert 'repro_jobs_total{kind="minimize"} 4' in text
        assert "# TYPE repro_depth gauge" in text
        assert "repro_depth 2" in text

    def test_histogram_series_cumulative_with_inf(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("t_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = reg.to_prometheus()
        assert 'repro_t_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_t_seconds_bucket{le="1"} 2' in text
        assert 'repro_t_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_t_seconds_count 3" in text
        samples = parse_prometheus_text(text)
        count = [v for n, _, v in samples if n == "repro_t_seconds_count"]
        assert count == [3.0]

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("odd_total", path='a"b\\c\nd').inc()
        samples = parse_prometheus_text(reg.to_prometheus())
        [(name, labels, value)] = samples
        assert name == "repro_odd_total"
        assert labels["path"] == 'a"b\\c\nd'
        assert value == 1.0

    def test_parse_skips_comments_and_blank_lines(self):
        text = "# HELP x_total help\n# TYPE x_total counter\n\nx_total 3\n"
        assert parse_prometheus_text(text) == [("x_total", {}, 3.0)]


# ----------------------------------------------------------------------
# Serve integration: histogram quantiles vs raw-sample percentiles
# ----------------------------------------------------------------------
class TestServeHistogram:
    def _run_jobs(self, n=6):
        # Every finished job -- executed or cache hit -- records one
        # latency sample in both the rolling deque and the histogram, so
        # n sequential submits yield n paired samples.
        async def _go():
            svc = AnalysisService(store=None, workers=2, trace_jobs=False)
            for _ in range(n):
                await svc.submit_and_wait(dict(MIN_EX1))
            counters = svc.counters()
            text = svc.metrics_text()
            hist = svc.job_latency_histogram()
            raw = list(svc.stats.latencies)
            await svc.drain(timeout=10)
            return counters, text, hist, raw

        return asyncio.run(_go())

    def test_bucket_quantiles_agree_with_deque_within_bucket_width(self):
        counters, text, hist, raw = self._run_jobs()
        assert hist.count == len(raw) > 0
        exact = latency_percentiles(raw)
        for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
            width = hist.bucket_width_at(q)
            assert abs(hist.quantile(q) - exact[key]) <= width

    def test_metrics_text_has_histograms_and_no_duplicate_series(self):
        counters, text, hist, raw = self._run_jobs(n=2)
        assert 'repro_serve_job_seconds_bucket{kind="minimize",le=' in text
        assert "repro_serve_job_seconds_sum" in text
        assert "repro_serve_jobs_total" in text
        # lp/engine histograms from the executor threads are exposed too
        assert "repro_lp_solve_seconds_bucket" in text
        seen = set()
        for name, labels, _ in parse_prometheus_text(text):
            series = (name, tuple(sorted(labels.items())))
            assert series not in seen, f"duplicate series {series}"
            seen.add(series)

    def test_counters_keep_flat_names_for_loadgen(self):
        counters, text, hist, raw = self._run_jobs(n=1)
        assert counters["serve_requests_total"] >= 1
        assert counters["serve_lp_solves_total"] >= 1  # executed once
        assert "serve_job_seconds_wall_sum" in counters


class TestLatencyPercentiles:
    def test_linear_interpolation_small_sample(self):
        pct = latency_percentiles([float(i) for i in range(1, 11)])
        assert pct["p50"] == pytest.approx(5.5)
        assert pct["p95"] == pytest.approx(9.55)
        assert pct["p99"] == pytest.approx(9.91)

    def test_single_sample(self):
        pct = latency_percentiles([3.0])
        assert pct == {"p50": 3.0, "p95": 3.0, "p99": 3.0}


# ----------------------------------------------------------------------
# repro top
# ----------------------------------------------------------------------
def _exposition(requests=10, ok=8, failed=2, depth=3.0):
    reg = MetricsRegistry(enabled=True)
    reg.counter("serve_requests_total").inc(requests)
    reg.counter("serve_completed_total").inc(ok)
    reg.counter("serve_failed_total").inc(failed)
    reg.counter("serve_executed_total").inc(ok)
    reg.counter("serve_memory_hits_total").inc(2)
    reg.counter("serve_jobs_total", kind="minimize", status="ok").inc(ok)
    reg.counter("serve_jobs_total", kind="minimize", status="error").inc(
        failed
    )
    h = reg.histogram("serve_job_seconds", kind="minimize")
    for i in range(requests):
        h.observe(0.01 * (i + 1))
    reg.gauge("serve_inflight").set(1.0)
    reg.gauge("engine_pool_queue_depth").set(depth)
    return reg.to_prometheus()


class TestTop:
    def test_metrics_view_totals_and_buckets(self):
        view = MetricsView(_exposition(), wall=100.0)
        assert view.total("serve_jobs_total", kind="minimize") == 10.0
        assert view.total("serve_jobs_total", status="error") == 2.0
        assert view.gauge("engine_pool_queue_depth") == 3.0
        buckets = view.buckets("serve_job_seconds")
        assert buckets[-1][0] == math.inf
        assert buckets[-1][1] == 10.0

    def test_bucket_delta_is_window(self):
        before = MetricsView(_exposition(requests=4, ok=4, failed=0), wall=0.0)
        after = MetricsView(_exposition(requests=10), wall=2.0)
        delta = bucket_delta(
            after.buckets("serve_job_seconds"),
            before.buckets("serve_job_seconds"),
        )
        assert delta[-1][1] == 6.0  # +Inf count difference

    def test_render_dashboard_first_and_second_frame(self):
        first = MetricsView(_exposition(requests=4, ok=4, failed=0), wall=10.0)
        frame1 = render_dashboard(first, None)
        assert "first scrape" in frame1
        second = MetricsView(_exposition(), wall=12.0)
        frame2 = render_dashboard(second, first)
        assert "window 2.0s" in frame2
        assert "3.0/s" in frame2  # 6 new requests over 2 s
        assert "minimize" in frame2

    def test_run_top_renders_requested_iterations(self):
        feeds = iter([_exposition(requests=4, ok=4, failed=0), _exposition()])
        frames: list[str] = []
        n = run_top(
            "127.0.0.1:0",
            interval=0.0,
            iterations=2,
            fetch=lambda: next(feeds),
            write=frames.append,
            clear=False,
        )
        assert n == 2
        assert sum("repro top" in f for f in frames) == 2


# ----------------------------------------------------------------------
# repro bench
# ----------------------------------------------------------------------
class TestBench:
    def test_record_twice_same_commit_no_regressions(self, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        record(path, label="a", only=["minimize_example1"], repeats=1)
        record(path, label="b", only=["minimize_example1"], repeats=1)
        data = load_trajectory(path)
        assert data["version"] == 1
        assert len(data["entries"]) == 2
        # identical code: comfortably inside a generous noise threshold
        report = compare(path, threshold=5.0)
        assert report.ok
        assert report.regressions == []

    def test_injected_slowdown_flagged(self, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        record(path, label="a", only=["minimize_example1"], repeats=1)
        data = load_trajectory(path)
        entry = json.loads(json.dumps(data["entries"][0]))
        entry["label"] = "slow"
        entry["results"]["minimize_example1"]["seconds"] *= 2.0
        data["entries"].append(entry)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(data, fh)
        report = compare(path, threshold=0.2)
        assert not report.ok
        [regression] = report.regressions
        assert regression.name == "minimize_example1"
        assert regression.ratio == pytest.approx(2.0)

    def test_check_mismatch_is_a_regression(self):
        base = {
            "label": "a",
            "results": {"w": {"seconds": 1.0, "check": 110.0}},
        }
        cand = {
            "label": "b",
            "results": {"w": {"seconds": 0.5, "check": 120.0}},
        }
        report = compare_entries(base, cand)
        assert not report.ok
        assert report.regressions[0].check_mismatch

    def test_compare_needs_two_entries(self, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        record(path, label="only", only=["minimize_example1"], repeats=1)
        with pytest.raises(BenchError):
            compare(path)

    def test_cli_record_and_compare(self, tmp_path, capsys):
        path = str(tmp_path / "BENCH_cli.json")
        args = ["bench", "record", path, "--only", "minimize_example1",
                "--repeats", "1"]
        assert main(args) == 0
        assert main(args + ["--label", "second"]) == 0
        assert main(["bench", "compare", path, "--threshold", "5.0"]) == 0
        out = capsys.readouterr().out
        assert "no regressions" in out

    def test_cli_compare_warn_only_exits_zero(self, tmp_path):
        path = str(tmp_path / "BENCH_cli.json")
        main(["bench", "record", path, "--only", "minimize_example1",
              "--repeats", "1"])
        data = load_trajectory(path)
        entry = json.loads(json.dumps(data["entries"][0]))
        entry["results"]["minimize_example1"]["seconds"] *= 3.0
        data["entries"].append(entry)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(data, fh)
        assert main(["bench", "compare", path]) == 1
        assert main(["bench", "compare", path, "--warn-only"]) == 0
