"""Unit tests for the error hierarchy, LP result helpers, and reporting."""

import pytest

from repro import errors
from repro.core.analysis import analyze
from repro.core.mlp import minimize_cycle_time
from repro.core.reporting import (
    format_analysis,
    format_comparison,
    format_optimal_result,
)
from repro.lp.result import LPResult, LPStatus


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "ClockError",
            "CircuitError",
            "PhaseOverlapError",
            "LPError",
            "InfeasibleError",
            "UnboundedError",
            "SolverError",
            "AnalysisError",
            "DivergentTimingError",
            "ParseError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_specializations(self):
        assert issubclass(errors.PhaseOverlapError, errors.CircuitError)
        assert issubclass(errors.InfeasibleError, errors.LPError)
        assert issubclass(errors.UnboundedError, errors.LPError)
        assert issubclass(errors.DivergentTimingError, errors.AnalysisError)

    def test_parse_error_location_formatting(self):
        err = errors.ParseError("bad token", line=3, column=7)
        assert "line 3" in str(err) and "column 7" in str(err)
        assert err.line == 3 and err.column == 7

    def test_parse_error_without_location(self):
        assert str(errors.ParseError("oops")) == "oops"


class TestLPResultHelpers:
    def test_ok_flag(self):
        assert LPResult(status=LPStatus.OPTIMAL).ok
        assert not LPResult(status=LPStatus.INFEASIBLE).ok

    def test_value_accessor(self):
        r = LPResult(status=LPStatus.OPTIMAL, values={"x": 2.0})
        assert r.value("x") == 2.0
        with pytest.raises(KeyError):
            r.value("y")

    def test_binding_constraints_tolerance(self):
        r = LPResult(
            status=LPStatus.OPTIMAL, slacks={"tight": 1e-9, "loose": 5.0}
        )
        assert r.binding_constraints() == ["tight"]


class TestReporting:
    def test_format_optimal_result(self, ex1):
        result = minimize_cycle_time(ex1)
        text = format_optimal_result(result)
        assert "optimal cycle time: 110" in text
        assert "D =" in text
        assert "slide:" in text

    def test_format_notes_slid_departures(self):
        from repro.designs import example1

        result = minimize_cycle_time(example1(120.0))
        if any(
            abs(result.lp_departures[k] - result.departures[k]) > 1e-9
            for k in result.departures
        ):
            assert "slid down" in format_optimal_result(result)

    def test_format_comparison_alignment(self):
        rows = [
            {"d41": 80.0, "mlp": 110.0, "nrip": 120.0},
            {"d41": 120.0, "mlp": 140.0, "nrip": 160.0},
        ]
        text = format_comparison(rows, ["d41", "mlp", "nrip"], title="Fig. 7")
        lines = text.splitlines()
        assert lines[0] == "Fig. 7"
        assert "d41" in lines[1]
        assert "110" in text and "160" in text

    def test_format_comparison_missing_cells(self):
        text = format_comparison([{"a": 1.0}], ["a", "b"])
        assert text  # renders without KeyError

    def test_format_analysis(self, ex1):
        from repro.clocking.library import two_phase_clock

        text = format_analysis(analyze(ex1, two_phase_clock(400.0)))
        assert "feasible" in text
