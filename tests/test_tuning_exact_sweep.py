"""Tests for fixed-period clock tuning and the exact parametric sweep."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.builder import CircuitBuilder
from repro.circuit.generate import random_multiloop_circuit
from repro.core.analysis import analyze
from repro.core.mlp import minimize_cycle_time
from repro.core.parametric import exact_sweep, exact_sweep_delay
from repro.core.tuning import maximize_slack
from repro.designs import example1
from repro.errors import ReproError


class TestMaximizeSlack:
    def test_slack_zero_at_a_setup_bound_optimum(self):
        # At Delta_41 = 0 the 80 ns optimum is pinned by a setup chain
        # (block Lc + two latch delays), so the best uniform margin is 0.
        g = example1(0.0)
        tuned = maximize_slack(g, 80.0)
        assert tuned.slack == pytest.approx(0.0, abs=1e-7)
        assert tuned.meets_timing

    def test_slack_positive_at_a_loop_bound_optimum(self, ex1):
        # At Delta_41 = 80 the 110 ns optimum is pinned by the feedback
        # loop, not by setup: the setup rows retain genuine margin.
        tuned = maximize_slack(ex1, 110.0)
        assert tuned.slack > 0

    def test_positive_slack_above_optimum(self, ex1):
        tuned = maximize_slack(ex1, 130.0)
        assert tuned.slack > 0
        assert analyze(ex1, tuned.schedule).worst_slack >= tuned.slack - 1e-6

    def test_negative_slack_when_setup_bound(self):
        # Tc = 75 < the 80 ns setup-driven floor of example1(0): the best
        # achievable margin is exactly -5 ns (the single-stage shortfall).
        tuned = maximize_slack(example1(0.0), 75.0)
        assert tuned.slack == pytest.approx(-5.0, abs=1e-6)
        assert not tuned.meets_timing

    def test_structurally_impossible_period_raises(self, ex1):
        # Below the loop bound no setup sacrifice helps: sigma does not
        # relax the propagation constraints.
        from repro.errors import InfeasibleError

        with pytest.raises(InfeasibleError):
            maximize_slack(ex1, 100.0)  # loop average bound is 110

    def test_slack_grows_with_period(self, ex1):
        slacks = [maximize_slack(ex1, p).slack for p in (110.0, 120.0, 140.0)]
        assert slacks[0] < slacks[1] < slacks[2]

    def test_tuned_beats_symmetric_shape(self, ex1):
        # At Tc = 120 the symmetric clock fails outright (the borrowing
        # baseline showed its floor is 136 ns), yet tuning finds margin.
        from repro.clocking.library import two_phase_clock

        assert not analyze(ex1, two_phase_clock(120.0)).feasible
        assert maximize_slack(ex1, 120.0).slack > 0

    def test_slack_value_is_exactly_achievable(self, ex1):
        tuned = maximize_slack(ex1, 130.0)
        report = analyze(ex1, tuned.schedule)
        assert report.worst_slack == pytest.approx(tuned.slack, abs=1e-6)

    def test_no_setup_rows_gives_infinite_slack(self):
        b = CircuitBuilder(["phi1", "phi2"])
        b.flipflop("F", phase="phi1", setup=0.0)
        b.latch("L", phase="phi2", setup=0.0)
        b.path("F", "L", 1.0)
        # The latch DOES have a setup row (setup 0 still generates L1), so
        # build a truly row-free case: a lone flip-flop with no fanin.
        b2 = CircuitBuilder(["phi1"])
        b2.flipflop("F", phase="phi1")
        tuned = maximize_slack(b2.build(), 10.0)
        assert tuned.slack == float("inf")

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(3, 7),
        seed=st.integers(0, 9999),
        stretch=st.floats(1.01, 1.8),
    )
    def test_random_circuits_slack_consistency(self, n, seed, stretch):
        g = random_multiloop_circuit(n, n_extra_arcs=2, k=2, seed=seed)
        opt = minimize_cycle_time(g).period
        tuned = maximize_slack(g, opt * stretch)
        assert tuned.slack >= -1e-6
        assert analyze(g, tuned.schedule).worst_slack >= tuned.slack - 1e-6


class TestExactSweep:
    def test_recovers_max_function(self):
        result = exact_sweep(lambda x: max(4.0, x), 0.0, 10.0)
        assert len(result.segments) == 2
        assert result.breakpoints == pytest.approx([4.0], abs=1e-5)
        assert result.slopes == pytest.approx([0.0, 1.0])

    def test_single_segment(self):
        result = exact_sweep(lambda x: 3 * x + 1, 0.0, 5.0)
        assert len(result.segments) == 1
        assert result.slopes == pytest.approx([3.0])

    def test_three_segments(self):
        f = lambda x: max(8.0, (14 + x) / 2, 2 + x)  # noqa: E731
        result = exact_sweep(f, 0.0, 14.0)
        assert result.breakpoints == pytest.approx([2.0, 10.0], abs=1e-5)
        assert result.slopes == pytest.approx([0.0, 0.5, 1.0])

    def test_bad_range_rejected(self):
        with pytest.raises(ReproError):
            exact_sweep(lambda x: x, 5.0, 5.0)

    def test_fig7_breakpoints_to_high_precision(self):
        result = exact_sweep_delay(example1(), "L4", "L1", 0.0, 140.0)
        assert result.breakpoints == pytest.approx([20.0, 100.0], abs=1e-4)
        assert result.slopes == pytest.approx([0.0, 0.5, 1.0])
        # Interpolation reproduces the published operating points.
        assert result.period_at(80.0) == pytest.approx(110.0, abs=1e-6)
        assert result.period_at(120.0) == pytest.approx(140.0, abs=1e-6)

    def test_exact_matches_grid_sweep(self):
        from repro.core.parametric import sweep_delay

        grid = sweep_delay(
            example1(), "L4", "L1", grid=[float(x) for x in range(0, 141, 20)]
        )
        exact = exact_sweep_delay(example1(), "L4", "L1", 0.0, 140.0)
        for x in range(0, 141, 20):
            assert exact.period_at(float(x)) == pytest.approx(
                grid.period_at(float(x)), abs=1e-6
            )
