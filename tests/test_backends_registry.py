"""Tests for the LP backend registry."""

import pytest

from repro.errors import SolverError
from repro.lp.backends import (
    DEFAULT_BACKEND,
    available_backends,
    register_backend,
    solve,
)
from repro.lp.expr import var
from repro.lp.model import LinearProgram
from repro.lp.result import LPResult, LPStatus


def tiny_lp():
    lp = LinearProgram()
    lp.minimize(var("x"))
    lp.add_ge(var("x"), 3, name="lb")
    return lp


class TestRegistry:
    def test_simplex_always_available(self):
        assert "simplex" in available_backends()
        assert DEFAULT_BACKEND == "simplex"

    def test_default_solve(self):
        r = solve(tiny_lp())
        assert r.objective == pytest.approx(3.0)
        assert r.backend == "simplex"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SolverError, match="unknown LP backend"):
            solve(tiny_lp(), backend="cplex")

    def test_custom_backend_registration(self):
        calls = []

        def fake(program):
            calls.append(program)
            return LPResult(
                status=LPStatus.OPTIMAL, objective=42.0, backend="fake"
            )

        register_backend("fake-solver", fake)
        try:
            r = solve(tiny_lp(), backend="fake-solver")
            assert r.objective == 42.0
            assert len(calls) == 1
            assert "fake-solver" in available_backends()
        finally:
            from repro.lp import backends

            backends._BACKENDS.pop("fake-solver", None)

    def test_scipy_listed_when_importable(self):
        try:
            import scipy  # noqa: F401
        except ImportError:
            pytest.skip("scipy not installed")
        assert "scipy" in available_backends()


class TestGaasTuningCrossCheck:
    def test_gaas_has_zero_margin_at_its_optimum(self):
        # The 4.4 ns optimum is set by a setup-bounded cycle (the result
        # flip-flop's capture), so the best uniform margin at 4.4 ns is 0.
        from repro.core.tuning import maximize_slack
        from repro.designs import gaas_datapath

        tuned = maximize_slack(gaas_datapath(), 4.4)
        assert tuned.slack == pytest.approx(0.0, abs=1e-9)

    def test_gaas_gains_margin_with_period(self):
        from repro.core.tuning import maximize_slack
        from repro.designs import gaas_datapath

        tuned = maximize_slack(gaas_datapath(), 5.0)
        assert tuned.slack > 0
