"""Unit tests for clock-skew modeling."""

import pytest

from repro.clocking.library import two_phase_clock
from repro.clocking.skew import SkewBound, apply_skew, worst_case_schedules
from repro.errors import ClockError


class TestSkewBound:
    def test_span(self):
        assert SkewBound(0.1, 0.2).span == pytest.approx(0.3)

    def test_negative_rejected(self):
        with pytest.raises(ClockError):
            SkewBound(-0.1, 0.0)


class TestApplySkew:
    def test_mapping_offsets(self):
        s = two_phase_clock(100.0)
        skewed = apply_skew(s, {"phi2": 5.0})
        assert skewed["phi1"].start == s["phi1"].start
        assert skewed["phi2"].start == s["phi2"].start + 5.0

    def test_sequence_offsets(self):
        s = two_phase_clock(100.0)
        skewed = apply_skew(s, [1.0, -2.0])
        assert skewed["phi1"].start == 1.0
        assert skewed["phi2"].start == s["phi2"].start - 2.0

    def test_wrong_length_rejected(self):
        with pytest.raises(ClockError):
            apply_skew(two_phase_clock(100.0), [1.0])

    def test_clamps_at_zero(self):
        s = two_phase_clock(100.0)
        skewed = apply_skew(s, {"phi1": -5.0})
        assert skewed["phi1"].start == 0.0

    def test_widths_preserved(self):
        s = two_phase_clock(100.0)
        skewed = apply_skew(s, {"phi1": 3.0, "phi2": -3.0})
        assert skewed.widths == s.widths


class TestWorstCase:
    def test_corner_count(self):
        s = two_phase_clock(100.0)
        bounds = {"phi1": SkewBound(1.0, 1.0), "phi2": SkewBound(0.5, 0.5)}
        corners = worst_case_schedules(s, bounds)
        assert len(corners) == 4
        starts = {(c["phi1"].start, c["phi2"].start) for c in corners}
        assert len(starts) == 4

    def test_no_skew_returns_nominal(self):
        s = two_phase_clock(100.0)
        corners = worst_case_schedules(s, {})
        assert corners == [s]

    def test_zero_span_bounds_ignored(self):
        s = two_phase_clock(100.0)
        corners = worst_case_schedules(s, {"phi1": SkewBound(0.0, 0.0)})
        assert corners == [s]

    def test_explosion_guard(self):
        s = two_phase_clock(100.0)
        bounds = {"phi1": SkewBound(1, 1), "phi2": SkewBound(1, 1)}
        with pytest.raises(ClockError):
            worst_case_schedules(s, bounds, max_phases=1)
