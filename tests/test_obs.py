"""Tests for the observability subsystem (repro.obs) and its wiring."""

from __future__ import annotations

import json
import logging

import pytest

from repro import obs
from repro.cli import main
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.reporting import format_optimal_result
from repro.designs import example1
from repro.engine import Engine, FaultJob, MinimizeJob
from repro.engine.metrics import MetricsAggregator
from repro.lang.writer import write_circuit
from repro.obs import metrics, trace


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with tracing and metrics off, no log."""
    trace.reset(enabled=False)
    metrics.reset(enabled=False)
    obs.set_log(None)
    yield
    trace.reset(enabled=False)
    metrics.reset(enabled=False)
    obs.set_log(None)


@pytest.fixture
def ex1_file(tmp_path):
    path = tmp_path / "ex1.lcd"
    path.write_text(write_circuit(example1(80.0)))
    return str(path)


# ----------------------------------------------------------------------
# Span tracer primitives
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_returns_null_span(self):
        span = trace.span("anything")
        assert isinstance(span, obs.NullSpan)
        assert not span
        with span as s:
            s.set("k", 1)
            s.inc("c")
            s.event("e")
        assert trace.get_tracer().roots == []

    def test_nesting_builds_a_tree(self):
        tracer = trace.enable()
        with trace.span("outer", kind="test") as outer:
            outer.inc("touched")
            with trace.span("inner") as inner:
                inner.set("depth", 2)
                trace.add_event("ping", n=1)
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert root.attributes == {"kind": "test"}
        assert root.counters == {"touched": 1}
        assert [c.name for c in root.children] == ["inner"]
        assert root.children[0].events[0]["name"] == "ping"
        assert root.duration > 0.0

    def test_exception_unwind_keeps_stack_consistent(self):
        tracer = trace.enable()
        with pytest.raises(RuntimeError):
            with trace.span("outer"):
                with trace.span("inner"):
                    raise RuntimeError("boom")
        assert tracer._stack == []
        assert [r.name for r in tracer.roots] == ["outer"]
        assert tracer.roots[0].attributes.get("exception") == "RuntimeError"

    def test_serialization_round_trip(self):
        tracer = trace.enable()
        with trace.span("a", x=1) as a:
            a.inc("n", 3)
            a.event("hit", key="k")
            with trace.span("b"):
                pass
        data = tracer.roots[0].to_dict()
        clone = obs.Span.from_dict(json.loads(json.dumps(data)))
        assert [s.name for s in clone.walk()] == ["a", "b"]
        assert clone.counters == {"n": 3}
        assert clone.attributes == {"x": 1}

    def test_attach_grafts_under_current_span(self):
        tracer = trace.enable()
        foreign = {"name": "job", "t0": 0.0, "dur": 0.5, "pid": 999,
                   "attrs": {}, "counters": {}, "events": [], "children": []}
        with trace.span("batch"):
            trace.attach([foreign])
        root = tracer.roots[0]
        assert [c.name for c in root.children] == ["job"]
        assert root.children[0].pid == 999


# ----------------------------------------------------------------------
# Event log + logging bridge
# ----------------------------------------------------------------------
class TestEventLog:
    def test_levels_filter_and_jsonl_shape(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.EventLog(str(path), run_id="r1", level="info") as log:
            assert log.emit("kept", level="info", value=1)
            assert not log.emit("dropped", level="debug")
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["event"] for l in lines] == ["kept"]
        assert lines[0]["run"] == "r1"
        assert lines[0]["value"] == 1
        assert log.emitted == 1 and log.dropped == 1

    def test_global_log_and_module_emit(self, tmp_path):
        assert not obs.emit("nowhere")  # no log installed -> no-op
        log = obs.EventLog(str(tmp_path / "g.jsonl"))
        obs.set_log(log)
        assert obs.emit("somewhere", n=2)
        obs.set_log(None)
        log.close()

    def test_logging_bridge_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = obs.EventLog(str(path))
        handler = obs.install_logging_bridge(log, logger_name="repro.test")
        try:
            logging.getLogger("repro.test").warning("watch out: %s", 42)
        finally:
            obs.remove_logging_bridge(handler, logger_name="repro.test")
            log.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["event"] == "log"
        assert lines[0]["level"] == "warning"
        assert lines[0]["message"] == "watch out: 42"


# ----------------------------------------------------------------------
# Instrumented MLP run: span tree shape + convergence telemetry
# ----------------------------------------------------------------------
class TestMlpTracing:
    def test_span_tree_and_pivot_events(self, ex1):
        tracer = trace.enable()
        with trace.span("run"):
            result = minimize_cycle_time(ex1)
        names = [s.name for s in tracer.roots[0].walk()]
        for expected in ("constraint_gen", "lp_solve", "slide", "analysis"):
            assert expected in names
        pivots = sum(
            1
            for s in tracer.roots[0].walk()
            for e in s.events
            if e["name"] == "pivot"
        )
        assert pivots > 0
        lp_spans = [s for s in tracer.roots[0].walk() if s.name == "lp_solve"]
        assert all(s.attributes["pivots"] >= 0 for s in lp_spans)
        assert result.period == pytest.approx(110.0)

    def test_untraced_run_is_identical(self, ex1):
        baseline = minimize_cycle_time(ex1)
        trace.enable()
        with trace.span("run"):
            traced = minimize_cycle_time(ex1)
        trace.disable()
        assert traced.period == baseline.period
        assert traced.departures == baseline.departures
        assert traced.slide_residual == baseline.slide_residual

    def test_slide_residual_in_result_and_report(self, ex1):
        result = minimize_cycle_time(ex1)
        assert result.slide_residual >= 0.0
        assert result.extra["slide_residual"] == result.slide_residual
        assert "residual" in format_optimal_result(result)


# ----------------------------------------------------------------------
# Engine: worker span reassembly across the process pool
# ----------------------------------------------------------------------
class TestEngineTracing:
    def test_serial_jobs_nest_under_batch_span(self, ex1):
        tracer = trace.enable()
        job = MinimizeJob(graph=ex1, mlp=MLPOptions(verify=False), label="e1")
        with trace.span("top"):
            Engine(jobs=1).run_jobs([job])
        walked = list(tracer.roots[0].walk())
        batch = [s for s in walked if s.name == "engine.run_jobs"]
        jobs = [s for s in walked if s.name == "job.minimize"]
        assert len(batch) == 1 and len(jobs) == 1
        assert jobs[0] in batch[0].children

    def test_parallel_jobs_reassemble_with_worker_pids(self, ex1, ex2):
        import os

        tracer = trace.enable()
        jobs = [
            MinimizeJob(graph=ex1, mlp=MLPOptions(verify=False), label="e1"),
            MinimizeJob(graph=ex2, mlp=MLPOptions(verify=False), label="e2"),
        ]
        with trace.span("top"):
            results = Engine(jobs=2).run_jobs(jobs)
        assert all(r.ok for r in results)
        assert all(r.spans == [] for r in results)  # consumed by the graft
        walked = list(tracer.roots[0].walk())
        job_spans = [s for s in walked if s.name == "job.minimize"]
        assert len(job_spans) == 2
        assert {s.attributes["label"] for s in job_spans} == {"e1", "e2"}
        assert all(s.pid != os.getpid() for s in job_spans)
        # worker job spans carry the full per-job tree
        for span in job_spans:
            assert "lp_solve" in [c.name for c in span.children]

    def test_crash_retry_produces_span_from_surviving_attempt(self, tmp_path):
        tracer = trace.enable()
        flag = str(tmp_path / "armed")
        jobs = [
            FaultJob(mode="ok", value=1.0, label="ok"),
            FaultJob(mode="crash", value=2.0, crash_once_path=flag,
                     label="crashy"),
        ]
        with trace.span("top"):
            results = Engine(jobs=2, retries=1).run_jobs(jobs)
        assert [r.ok for r in results] == [True, True]
        assert results[1].attempts == 2
        walked = list(tracer.roots[0].walk())
        fault_spans = [s for s in walked if s.name == "job.fault"]
        # The crashed attempt's span dies with its worker; the retry's
        # span (plus the clean job's) must still reassemble.
        labels = sorted(s.attributes["label"] for s in fault_spans)
        assert labels == ["crashy", "ok"]
        batch = next(s for s in walked if s.name == "engine.run_jobs")
        assert any(e["name"] == "pool.failover" for e in batch.events)

    def test_worker_metrics_merge_into_parent_registry(self, ex1, ex2):
        metrics.reset(enabled=True)
        jobs = [
            MinimizeJob(graph=ex1, mlp=MLPOptions(verify=False), label="e1"),
            MinimizeJob(graph=ex2, mlp=MLPOptions(verify=False), label="e2"),
        ]
        results = Engine(jobs=2).run_jobs(jobs)
        assert all(r.ok for r in results)
        # snapshots were consumed by the merge, like span grafting
        assert all(r.obs_metrics == [] for r in results)
        registry = metrics.get_registry()
        executed = sum(
            m.value
            for m in registry.collect()
            if m.name == "engine_jobs_total"
        )
        assert executed == 2.0
        latency = registry.find("engine_job_seconds", kind="minimize")
        assert latency is not None and latency.count == 2
        # the compute layers' series crossed the process boundary too
        assert sum(
            m.value
            for m in registry.collect()
            if m.name == "lp_solves_total"
        ) >= 2.0

    def test_crash_retry_merges_metrics_exactly_once(self, tmp_path):
        """A retried job's snapshot merges once: the crashed attempt's
        worker dies before sending its result, so only the surviving
        attempt contributes counts."""
        metrics.reset(enabled=True)
        flag = str(tmp_path / "armed")
        jobs = [
            FaultJob(mode="ok", value=1.0, label="ok"),
            FaultJob(mode="crash", value=2.0, crash_once_path=flag,
                     label="crashy"),
        ]
        results = Engine(jobs=2, retries=1).run_jobs(jobs)
        assert [r.ok for r in results] == [True, True]
        assert results[1].attempts == 2
        registry = metrics.get_registry()
        executed = sum(
            m.value
            for m in registry.collect()
            if m.name == "engine_jobs_total"
        )
        # exactly one count per job -- not one per attempt
        assert executed == 2.0
        latency = registry.find("engine_job_seconds", kind="fault")
        assert latency is not None and latency.count == 2

    def test_cached_results_carry_no_spans(self, ex1):
        trace.enable()
        engine = Engine(jobs=1)
        job = MinimizeJob(graph=ex1, mlp=MLPOptions(verify=False))
        with trace.span("top"):
            engine.run_jobs([job])
            second = engine.run_jobs([job])[0]
        assert second.cached and second.spans == []

    def test_cache_events_recorded(self, ex1):
        tracer = trace.enable()
        engine = Engine(jobs=1)
        job = MinimizeJob(graph=ex1, mlp=MLPOptions(verify=False))
        with trace.span("top"):
            engine.run_jobs([job])
            engine.run_jobs([job])
        events = [
            e
            for s in tracer.roots[0].walk()
            for e in s.events
            if e["name"] in ("cache.lookup", "cache.store")
        ]
        hits = [e for e in events if e["name"] == "cache.lookup" and e["hit"]]
        stores = [e for e in events if e["name"] == "cache.store"]
        assert hits and stores


class TestCachedFailedMetric:
    def test_duplicate_failed_jobs_counted(self):
        engine = Engine(jobs=1)
        bad = FaultJob(mode="error", label="dup")
        results = engine.run_jobs([bad, bad])
        assert [r.ok for r in results] == [False, False]
        assert results[1].cached
        report = engine.report
        assert report.cached_failed == 1
        assert "1 from cache (1 failed)" in report.format()

    def test_zero_keeps_format_stable(self):
        aggregator = MetricsAggregator()
        aggregator.add_result(ok=True, cached=False, attempts=1, metrics={})
        assert "(0 failed)" not in aggregator.report.format()
        assert "0 from cache" in aggregator.report.format()


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _sample_forest():
    tracer = trace.enable()
    with trace.span("root", label="L") as root:
        root.inc("widgets", 2)
        with trace.span("lp_solve", backend="simplex", pivots=7):
            trace.add_event("pivot", enter=1, leave=2)
        with trace.span("slide", method="jacobi") as s:
            s.set("sweeps", 3)
            s.set("residual", 0.125)
    spans = [s.to_dict() for s in tracer.roots]
    trace.disable()
    return spans


class TestExporters:
    def test_chrome_trace_shape(self):
        spans = _sample_forest()
        doc = obs.chrome_trace(spans, run_id="rid")
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert {e["name"] for e in complete} == {"root", "lp_solve", "slide"}
        assert instants[0]["name"] == "pivot"
        root_event = next(e for e in complete if e["name"] == "root")
        assert root_event["args"]["counter.widgets"] == 2
        assert doc["repro"]["run_id"] == "rid"
        assert doc["repro"]["spans"] == spans

    def test_write_load_round_trip(self, tmp_path):
        spans = _sample_forest()
        path = str(tmp_path / "t.json")
        obs.write_chrome_trace(path, spans, run_id="rid")
        run_id, loaded = obs.load_trace(path)
        assert run_id == "rid"
        assert loaded == json.loads(json.dumps(spans))

    def test_load_foreign_chrome_trace(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({
            "traceEvents": [
                {"name": "x", "ph": "X", "ts": 1e6, "dur": 2e6, "pid": 1},
                {"name": "skip", "ph": "M", "ts": 0},
            ]
        }))
        run_id, spans = obs.load_trace(str(path))
        assert run_id is None
        assert [s["name"] for s in spans] == ["x"]
        assert spans[0]["dur"] == pytest.approx(2.0)

    def test_prometheus_text(self):
        text = obs.prometheus_text(_sample_forest(), extra={"jobs_total": 4})
        assert 'repro_span_total{name="lp_solve"} 1' in text
        assert 'repro_span_counter_total{name="root",counter="widgets"} 2' in text
        assert 'repro_span_events_total{name="lp_solve",event="pivot"} 1' in text
        assert "repro_jobs_total 4" in text

    def test_summarize_tables(self):
        text = obs.summarize(_sample_forest(), run_id="rid")
        assert "run rid" in text
        assert "time breakdown (top-down):" in text
        assert "lp solves:" in text
        assert "slide convergence:" in text
        assert "jacobi" in text and "0.125" in text


# ----------------------------------------------------------------------
# CLI round trips
# ----------------------------------------------------------------------
class TestCliObservability:
    def test_trace_flag_then_summarize(self, ex1_file, tmp_path, capsys):
        trace_file = str(tmp_path / "t.json")
        assert main(["minimize", ex1_file, "--trace", trace_file]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", trace_file]) == 0
        out = capsys.readouterr().out
        assert "time breakdown (top-down):" in out
        assert "repro.minimize" in out
        assert "lp solves:" in out
        assert "slide convergence:" in out
        # tracing is torn down after the run
        assert not trace.is_enabled()

    def test_trace_export_prom(self, ex1_file, tmp_path, capsys):
        trace_file = str(tmp_path / "t.json")
        assert main(["minimize", ex1_file, "--trace", trace_file]) == 0
        capsys.readouterr()
        assert main(["trace", "export-prom", trace_file]) == 0
        out = capsys.readouterr().out
        assert 'repro_span_seconds_total{name="lp_solve"}' in out

    def test_traced_parallel_batch_covers_workers(self, ex1_file, tmp_path,
                                                  capsys):
        trace_file = str(tmp_path / "b.json")
        assert main(["batch", ex1_file, ex1_file, "--jobs", "2",
                     "--trace", trace_file]) == 0
        capsys.readouterr()
        _, spans = obs.load_trace(trace_file)
        names = [s["name"] for s in obs.walk(spans)]
        assert "engine.run_jobs" in names
        assert "job.minimize" in names

    def test_log_json_records_run_events(self, ex1_file, tmp_path, capsys):
        log_file = str(tmp_path / "run.jsonl")
        assert main(["minimize", ex1_file, "--log-json", log_file]) == 0
        capsys.readouterr()
        lines = [json.loads(l) for l in open(log_file, encoding="utf-8")]
        events = [l["event"] for l in lines]
        assert events[0] == "run.start"
        assert "minimize.done" in events
        assert events[-1] == "run.end"
        assert lines[-1]["exit_code"] == 0
        assert len({l["run"] for l in lines}) == 1
        assert obs.get_log() is None  # torn down

    def test_quiet_suppresses_output_keeps_exit_code(self, ex1_file, capsys):
        assert main(["minimize", ex1_file, "-q"]) == 0
        assert capsys.readouterr().out == ""
        # and a later run without -q prints again
        assert main(["minimize", ex1_file]) == 0
        assert "optimal cycle time" in capsys.readouterr().out

    def test_summarize_rejects_non_trace_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        assert main(["trace", "summarize", str(bad)]) == 2
        assert "error" in capsys.readouterr().err
