"""Unit tests for the hold-time extension and the binary-search helpers."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.clocking.library import two_phase_clock
from repro.core.minperiod import (
    feasible_period,
    min_period_search,
    proportional_template,
)
from repro.core.mlp import minimize_cycle_time
from repro.core.shortpath import check_hold
from repro.errors import AnalysisError


def hold_circuit(min_delay=5.0, hold=1.0):
    b = CircuitBuilder(["phi1", "phi2"])
    b.latch("A", phase="phi1", setup=2, delay=3, hold=hold)
    b.latch("B", phase="phi2", setup=2, delay=3, hold=hold)
    b.path("A", "B", 30, min_delay=min_delay)
    b.path("B", "A", 30, min_delay=min_delay)
    return b.build()


class TestCheckHold:
    def test_comfortable_margins_pass(self):
        g = hold_circuit(min_delay=5.0, hold=1.0)
        report = check_hold(g, two_phase_clock(100.0))
        assert report.feasible
        assert report.worst_slack > 0

    def test_fast_path_with_huge_hold_fails(self):
        # Hold demanded far beyond the cycle: the next cycle's earliest
        # arrival cannot satisfy it.
        g = hold_circuit(min_delay=0.0, hold=95.0)
        report = check_hold(g, two_phase_clock(100.0))
        assert not report.feasible
        assert report.violations

    def test_hold_slack_formula(self):
        g = hold_circuit(min_delay=5.0, hold=1.0)
        schedule = two_phase_clock(100.0)
        report = check_hold(g, schedule)
        t = report.timings["B"]
        # Earliest departure from A = phase open (0 rel);
        # earliest arrival at B = 0 + 3 + 5 + S_12 = 8 - 50 = -42.
        assert t.early_arrival == pytest.approx(-42.0)
        # Slack = (a + Tc) - (T_q + hold) = 58 - 26.
        assert t.slack == pytest.approx((-42.0 + 100.0) - (25.0 + 1.0))

    def test_no_fanin_is_infinitely_safe(self):
        b = CircuitBuilder(["phi1", "phi2"])
        b.latch("A", phase="phi1", hold=5)
        b.latch("B", phase="phi2")
        b.path("A", "B", 10)
        report = check_hold(b.build(), two_phase_clock(100.0))
        assert report.timings["A"].slack == float("inf")

    def test_rise_ff_hold_checked_at_edge(self):
        b = CircuitBuilder(["phi1", "phi2"])
        b.latch("L", phase="phi1", delay=3)
        b.flipflop("F", phase="phi2", hold=2.0, edge="rise")
        b.path("L", "F", 10, min_delay=1)
        b.path("F", "L", 10, min_delay=1)
        report = check_hold(b.build(), two_phase_clock(100.0))
        f = report.timings["F"]
        # Close for a rising FF is the sampling edge (0 relative).
        assert f.slack == pytest.approx(f.early_arrival + 100.0 - 2.0)

    def test_longer_period_increases_hold_slack(self):
        g = hold_circuit(min_delay=2.0, hold=10.0)
        s100 = check_hold(g, two_phase_clock(100.0)).worst_slack
        s200 = check_hold(g, two_phase_clock(200.0)).worst_slack
        assert s200 > s100


class TestMinPeriodSearch:
    def test_finds_boundary(self, ex1):
        template = proportional_template(two_phase_clock(1.0))
        period = min_period_search(ex1, template, hi=1000.0, tol=1e-6)
        assert feasible_period(ex1, template, period)
        assert not feasible_period(ex1, template, period - 1e-3)

    def test_search_upper_bounds_mlp(self, ex1):
        template = proportional_template(two_phase_clock(1.0))
        period = min_period_search(ex1, template, hi=1000.0)
        assert period >= minimize_cycle_time(ex1).period - 1e-6

    def test_infeasible_hi_rejected(self, ex1):
        template = proportional_template(two_phase_clock(1.0))
        with pytest.raises(AnalysisError):
            min_period_search(ex1, template, hi=50.0)

    def test_bad_bounds_rejected(self, ex1):
        template = proportional_template(two_phase_clock(1.0))
        with pytest.raises(AnalysisError):
            min_period_search(ex1, template, lo=10.0, hi=5.0)

    def test_feasible_lo_short_circuits(self, ex1):
        template = proportional_template(two_phase_clock(1.0))
        assert min_period_search(ex1, template, lo=500.0, hi=1000.0) == 500.0

    def test_zero_period_reference_rejected(self):
        from repro.clocking.phase import ClockPhase
        from repro.clocking.schedule import ClockSchedule

        zero = ClockSchedule(0.0, [ClockPhase("phi1", 0.0, 0.0)])
        with pytest.raises(AnalysisError):
            proportional_template(zero)
