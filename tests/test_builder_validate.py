"""Unit tests for CircuitBuilder and structural validation."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.validate import check_loop_phases, check_structure
from repro.clocking.library import two_phase_clock
from repro.clocking.phase import ClockPhase
from repro.clocking.schedule import ClockSchedule
from repro.errors import CircuitError, PhaseOverlapError


class TestBuilder:
    def test_chaining(self):
        g = (
            CircuitBuilder(["p", "q"])
            .latch("A", phase="p")
            .latch("B", phase="q")
            .path("A", "B", 1.0)
            .build()
        )
        assert g.l == 2

    def test_latches_bulk(self):
        g = (
            CircuitBuilder(["p"])
            .latches(["A", "B", "C"], phase="p", setup=1, delay=2)
            .build()
        )
        assert g.l == 3
        assert all(s.setup == 1 for s in g.synchronizers)

    def test_chain(self):
        g = (
            CircuitBuilder(["p", "q"])
            .latch("A", phase="p")
            .latch("B", phase="q")
            .latch("C", phase="p")
            .chain(["A", "B", "C"], delay=4.0)
            .build()
        )
        assert g.arc("A", "B").delay == 4.0
        assert g.arc("B", "C").delay == 4.0

    def test_chain_too_short(self):
        with pytest.raises(CircuitError):
            CircuitBuilder(["p"]).latch("A", phase="p").chain(["A"], 1.0)

    def test_duplicate_name_rejected(self):
        b = CircuitBuilder(["p"]).latch("A", phase="p")
        with pytest.raises(CircuitError):
            b.latch("A", phase="p")

    def test_unknown_phase_rejected(self):
        with pytest.raises(CircuitError):
            CircuitBuilder(["p"]).latch("A", phase="zz")

    def test_flipflop(self):
        g = CircuitBuilder(["p"]).flipflop("F", phase="p", edge="fall").build()
        assert not g["F"].is_latch

    def test_empty_phases_rejected(self):
        with pytest.raises(CircuitError):
            CircuitBuilder([])


class TestLoopPhaseCheck:
    def test_single_phase_latch_loop_flagged(self):
        g = (
            CircuitBuilder(["p", "q"])
            .latch("A", phase="p")
            .latch("B", phase="p")
            .path("A", "B", 1)
            .path("B", "A", 1)
            .build()
        )
        problems = check_loop_phases(g)
        assert len(problems) == 1
        assert "single phase" in problems[0]

    def test_two_phase_loop_ok(self):
        g = (
            CircuitBuilder(["p", "q"])
            .latch("A", phase="p")
            .latch("B", phase="q")
            .path("A", "B", 1)
            .path("B", "A", 1)
            .build()
        )
        assert check_loop_phases(g) == []

    def test_flipflop_breaks_loop(self):
        g = (
            CircuitBuilder(["p", "q"])
            .latch("A", phase="p")
            .flipflop("F", phase="p")
            .path("A", "F", 1)
            .path("F", "A", 1)
            .build()
        )
        assert check_loop_phases(g) == []

    def test_schedule_overlap_flagged(self):
        g = (
            CircuitBuilder(["p", "q"])
            .latch("A", phase="p")
            .latch("B", phase="q")
            .path("A", "B", 1)
            .path("B", "A", 1)
            .build()
        )
        overlapping = ClockSchedule(
            100.0, [ClockPhase("p", 0.0, 60.0), ClockPhase("q", 40.0, 30.0)]
        )
        problems = check_loop_phases(g, overlapping)
        assert problems and "simultaneously active" in problems[0]

    def test_schedule_nonoverlap_passes(self):
        g = (
            CircuitBuilder(["phi1", "phi2"])
            .latch("A", phase="phi1")
            .latch("B", phase="phi2")
            .path("A", "B", 1)
            .path("B", "A", 1)
            .build()
        )
        assert check_loop_phases(g, two_phase_clock(100.0)) == []


class TestCheckStructure:
    def test_clean_circuit(self, ex1):
        report = check_structure(ex1)
        assert report.ok
        assert report.warnings == []

    def test_delta_dq_below_setup_is_error(self):
        g = CircuitBuilder(["p"]).latch("A", phase="p", setup=5, delay=2).build()
        report = check_structure(g)
        assert not report.ok
        assert "Delta_DQ" in report.errors[0]

    def test_isolated_sync_warns(self):
        g = CircuitBuilder(["p"]).latch("A", phase="p").build()
        report = check_structure(g)
        assert report.ok
        assert any("isolated" in w for w in report.warnings)

    def test_unused_phase_warns(self):
        g = CircuitBuilder(["p", "unused"]).latch("A", phase="p").build()
        assert any("unused" in w for w in check_structure(g).warnings)

    def test_raise_on_error(self):
        g = (
            CircuitBuilder(["p"])
            .latch("A", phase="p")
            .latch("B", phase="p")
            .path("A", "B", 1)
            .path("B", "A", 1)
            .build()
        )
        with pytest.raises(PhaseOverlapError):
            check_structure(g).raise_on_error()
