"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.clocking.library import two_phase_clock
from repro.designs import example1, example2, fig1_circuit, gaas_datapath


@pytest.fixture
def ex1():
    """Example 1 (Fig. 5) at the paper's Fig. 6(a) operating point."""
    return example1(80.0)


@pytest.fixture
def ex2():
    return example2()


@pytest.fixture
def gaas():
    return gaas_datapath()


@pytest.fixture
def fig1():
    return fig1_circuit()


@pytest.fixture
def simple_pipeline():
    """A tiny open two-phase pipeline: L1 -> L2 -> L3."""
    b = CircuitBuilder(phases=["phi1", "phi2"])
    b.latch("L1", phase="phi1", setup=2, delay=3)
    b.latch("L2", phase="phi2", setup=2, delay=3)
    b.latch("L3", phase="phi1", setup=2, delay=3)
    b.path("L1", "L2", 10, min_delay=4)
    b.path("L2", "L3", 8, min_delay=3)
    return b.build()


@pytest.fixture
def nonoverlap_clock():
    """A 100 ns two-phase nonoverlapping clock."""
    return two_phase_clock(100.0)
