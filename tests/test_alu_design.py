"""Tests for the gate-level accumulator-ALU reference design."""

import pytest

from repro.circuit.lump import lump_parallel_latches
from repro.core.analysis import analyze
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.shortpath import check_hold
from repro.errors import CircuitError
from repro.netlist.designs import alu_datapath_netlist
from repro.netlist.extract import extract_timing_graph
from repro.netlist.sta import combinational_delays
from repro.sim import simulate


@pytest.fixture(scope="module")
def alu4():
    nl, phases = alu_datapath_netlist(4)
    return nl, phases, extract_timing_graph(nl, phases)


class TestStructure:
    def test_lint_clean(self, alu4):
        nl, _, _ = alu4
        assert nl.check() == []

    def test_synchronizer_census(self, alu4):
        _, _, g = alu4
        # ctl + 4 operand latches + 4 accumulator masters + 4 slaves +
        # the flag FF.
        assert g.l == 14
        assert len(g.flipflops) == 1

    def test_two_phases(self, alu4):
        _, _, g = alu4
        assert g.phase_names == ("phi1", "phi2")

    def test_bad_width_rejected(self):
        with pytest.raises(CircuitError):
            alu_datapath_netlist(0)


class TestTiming:
    def test_carry_chain_dominates(self, alu4):
        nl, _, g = alu4
        # The longest operand->accumulator path rides the carry chain into
        # the top bit; it must strictly exceed the bottom bit's path.
        top = g.arc("opa0", "acc3_lat")
        assert top is not None
        assert top.delay > g.arc("opa0", "acc0_lat").delay

    def test_min_delays_flat_across_bits(self, alu4):
        _, _, g = alu4
        # Short paths take the logic unit (one XOR + mux), identical per bit.
        mins = {
            b: g.arc(f"opa{b}", f"acc{b}_lat").min_delay for b in range(4)
        }
        assert len(set(mins.values())) == 1

    def test_optimum_grows_with_width(self):
        fast = MLPOptions(verify=False)
        periods = []
        for bits in (2, 4, 8):
            nl, phases = alu_datapath_netlist(bits)
            g = extract_timing_graph(nl, phases)
            periods.append(minimize_cycle_time(g, mlp=fast).period)
        assert periods[0] < periods[1] < periods[2]

    def test_optimum_verifies_and_simulates(self, alu4):
        _, _, g = alu4
        result = minimize_cycle_time(g)
        assert analyze(g, result.schedule).feasible
        assert simulate(g, result.schedule).feasible

    def test_master_slave_structure_is_hold_clean(self, alu4):
        # The slave latch inserts a phase crossing into the accumulate
        # loop, so the extracted contamination delays clear every hold
        # requirement at the aggressive optimum.
        _, _, g = alu4
        result = minimize_cycle_time(g)
        assert check_hold(g, result.schedule).feasible

    def test_hold_fix_flow_with_unknown_contamination(self, alu4):
        # Degrade the model: pretend contamination delays are unknown
        # (min_delay = 0, the pessimistic default) and demand a real hold
        # margin.  The short-path extension flags the races and
        # required_padding repairs them.
        from repro.circuit.elements import Latch
        from repro.circuit.graph import DelayArc, TimingGraph
        from repro.core.shortpath import apply_padding, required_padding

        _, _, g = alu4
        syncs = []
        for s in g.synchronizers:
            if s.is_latch:
                syncs.append(
                    Latch(name=s.name, phase=s.phase, setup=s.setup,
                          delay=s.delay, hold=0.1)
                )
            else:
                syncs.append(s)
        degraded = TimingGraph(
            g.phase_names,
            syncs,
            [DelayArc(a.src, a.dst, a.delay, 0.0, a.label) for a in g.arcs],
        )
        schedule = minimize_cycle_time(degraded).schedule
        hold = check_hold(degraded, schedule)
        assert not hold.feasible

        padding = required_padding(degraded, schedule)
        assert padding
        padded = apply_padding(degraded, padding)
        assert check_hold(padded, schedule).feasible

    def test_sta_paths_cover_all_register_pairs(self, alu4):
        nl, _, _ = alu4
        pairs = {(p.start, p.end) for p in combinational_delays(nl)}
        # Every accumulator slave bit feeds the flag FF via the zero tree.
        for b in range(4):
            assert (f"accs{b}", "flag") in pairs


class TestLumping:
    def test_distinguishable_slices_not_merged(self, alu4):
        # Carry-chain timing differs per bit, so lumping must keep every
        # latch distinct -- merging here would be a correctness bug.
        _, _, g = alu4
        reduced, _ = lump_parallel_latches(g)
        assert reduced.l == g.l

    def test_lumping_preserves_optimum_anyway(self, alu4):
        _, _, g = alu4
        reduced, _ = lump_parallel_latches(g)
        fast = MLPOptions(verify=False)
        assert minimize_cycle_time(reduced, mlp=fast).period == pytest.approx(
            minimize_cycle_time(g, mlp=fast).period
        )
