"""Tests for the revised simplex backend and its warm-start machinery."""

import random

import numpy as np
import pytest

from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.parametric import exact_sweep_delay
from repro.designs import example1
from repro.engine import Engine
from repro.errors import LPError
from repro.lp.backends import available_backends, solve, supports_warm_start
from repro.lp.basis import Basis
from repro.lp.expr import var
from repro.lp.model import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.revised_simplex import RevisedSimplexOptions, solve_revised_simplex
from repro.lp.simplex import solve_simplex
from repro.lp.standard_form import StandardForm

needs_scipy = pytest.mark.skipif(
    "scipy" not in available_backends(), reason="scipy backend unavailable"
)


class TestBasics:
    def test_bounded_optimum(self):
        lp = LinearProgram()
        x, y = var("x"), var("y")
        lp.minimize(-x - 2 * y)
        lp.add_le(x + y, 4, name="sum")
        lp.add_le(x, 3)
        lp.add_le(y, 2)
        r = solve_revised_simplex(lp)
        assert r.status is LPStatus.OPTIMAL
        assert r.objective == pytest.approx(-6.0)
        assert r.values == pytest.approx({"x": 2.0, "y": 2.0})
        assert r.extra["warm_start"] == "cold"

    def test_infeasible(self):
        lp = LinearProgram()
        lp.add_le(var("x"), -1)
        assert solve_revised_simplex(lp).status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        lp = LinearProgram()
        lp.minimize(-var("x"))
        lp.add_ge(var("x"), 1)
        assert solve_revised_simplex(lp).status is LPStatus.UNBOUNDED

    def test_equality_and_free(self):
        lp = LinearProgram()
        lp.set_free("z")
        lp.minimize(var("z"))
        lp.add_eq(var("z") + var("x"), 5)
        lp.add_le(var("x"), 7)
        r = solve_revised_simplex(lp)
        assert r.objective == pytest.approx(-2.0)

    def test_duals_match_dense(self):
        lp = LinearProgram()
        x, y = var("x"), var("y")
        lp.minimize(-x - y)
        lp.add_le(x + 2 * y, 6, name="a")
        lp.add_le(2 * x + y, 6, name="b")
        dense = solve_simplex(lp)
        revised = solve_revised_simplex(lp)
        assert revised.objective == pytest.approx(dense.objective)
        for name in ("a", "b"):
            assert revised.duals[name] == pytest.approx(dense.duals[name])

    def test_periodic_refactorization(self):
        # A chain of coupled rows long enough to force many pivots through
        # a tiny refactor_every, exercising the rebuild path.
        lp = LinearProgram()
        total = var("x0")
        lp.add_ge(var("x0"), 1, name="base")
        for i in range(1, 12):
            lp.add_ge(var(f"x{i}") - var(f"x{i-1}"), 1, name=f"step{i}")
            total = total + var(f"x{i}")
        lp.minimize(total)
        r = solve_revised_simplex(lp, RevisedSimplexOptions(refactor_every=3))
        assert r.status is LPStatus.OPTIMAL
        assert r.extra["refactorizations"] > 0
        cold = solve_revised_simplex(lp)
        assert r.objective == pytest.approx(cold.objective)


def _random_feasible_lp(seed: int) -> LinearProgram:
    """A small random LP that is feasible (x = 0 works) and bounded (boxes)."""
    rng = random.Random(seed)
    n = rng.randint(2, 4)
    lp = LinearProgram(name=f"rand{seed}")
    names = [f"x{i}" for i in range(n)]
    objective = None
    for name in names:
        coeff = rng.uniform(-5.0, 5.0)
        term = coeff * var(name)
        objective = term if objective is None else objective + term
        lp.add_le(var(name), rng.uniform(1.0, 10.0), name=f"box_{name}")
    lp.minimize(objective)
    for j in range(rng.randint(1, 4)):
        row = None
        for name in names:
            if rng.random() < 0.7:
                term = rng.uniform(-3.0, 3.0) * var(name)
                row = term if row is None else row + term
        if row is None:
            continue
        if rng.random() < 0.5:
            lp.add_le(row, rng.uniform(0.0, 8.0), name=f"le{j}")
        else:
            lp.add_ge(row, rng.uniform(-8.0, 0.0), name=f"ge{j}")
    return lp


class TestBackendAgreement:
    @needs_scipy
    def test_fifty_random_lps_agree(self):
        # Deterministic property test: dense simplex, revised simplex and
        # scipy must report the same optimum on feasible bounded LPs.
        for seed in range(50):
            lp = _random_feasible_lp(seed)
            dense = solve_simplex(lp)
            revised = solve_revised_simplex(lp)
            hi = solve(lp, backend="scipy")
            assert dense.status is LPStatus.OPTIMAL, seed
            assert revised.status is LPStatus.OPTIMAL, seed
            assert hi.status is LPStatus.OPTIMAL, seed
            assert revised.objective == pytest.approx(
                dense.objective, abs=1e-7
            ), seed
            assert revised.objective == pytest.approx(
                hi.objective, abs=1e-7
            ), seed

    def test_random_lps_agree_without_scipy(self):
        for seed in range(50, 70):
            lp = _random_feasible_lp(seed)
            dense = solve_simplex(lp)
            revised = solve_revised_simplex(lp)
            assert revised.objective == pytest.approx(dense.objective, abs=1e-7)


class TestWarmStart:
    def _lp(self, cap: float = 4.0) -> LinearProgram:
        lp = LinearProgram()
        x, y = var("x"), var("y")
        lp.minimize(-x - 2 * y)
        lp.add_le(x + y, cap, name="sum")
        lp.add_le(x, 3, name="bx")
        lp.add_le(y, 2, name="by")
        return lp

    def test_restart_from_own_basis_is_free(self):
        lp = self._lp()
        first = solve_revised_simplex(lp)
        basis = first.extra["basis"]
        again = solve_revised_simplex(lp, warm_start=basis)
        assert again.extra["warm_start"] == "hit"
        assert again.iterations == 0
        assert again.objective == pytest.approx(first.objective)

    def test_warm_start_after_rhs_change(self):
        first = solve_revised_simplex(self._lp(4.0))
        warm = solve_revised_simplex(
            self._lp(4.5), warm_start=first.extra["basis"]
        )
        cold = solve_revised_simplex(self._lp(4.5))
        assert warm.extra["warm_start"] == "hit"
        assert warm.objective == pytest.approx(cold.objective)
        assert warm.iterations <= cold.iterations

    def test_structure_mismatch_is_a_miss(self):
        first = solve_revised_simplex(self._lp())
        other = LinearProgram()
        other.minimize(var("a"))
        other.add_ge(var("a"), 1, name="lo")
        r = solve_revised_simplex(other, warm_start=first.extra["basis"])
        assert r.extra["warm_start"] == "miss"
        assert r.objective == pytest.approx(1.0)

    def test_infeasible_basis_falls_back(self):
        # Shrink the cap so the warm basis becomes primal infeasible: the
        # guard must reject it and re-solve cold with the same optimum.
        first = solve_revised_simplex(self._lp(40.0))
        shrunk = self._lp(1.0)
        warm = solve_revised_simplex(shrunk, warm_start=first.extra["basis"])
        cold = solve_revised_simplex(shrunk)
        assert warm.objective == pytest.approx(cold.objective)

    def test_basis_round_trip(self):
        first = solve_revised_simplex(self._lp())
        basis = first.extra["basis"]
        clone = Basis.from_dict(basis.to_dict())
        assert clone == basis
        assert clone.matches(StandardForm(self._lp()))

    def test_basis_rejects_negative_columns(self):
        with pytest.raises(LPError):
            Basis(columns=(0, -1), structure="abc")

    def test_backend_capability_flags(self):
        assert supports_warm_start("revised")
        assert not supports_warm_start("simplex")

    def test_solve_dispatch_forwards_warm_start(self):
        lp = self._lp()
        first = solve(lp, backend="revised")
        warm = solve(lp, backend="revised", warm_start=first.extra["basis"])
        assert warm.extra["warm_start"] == "hit"
        # Backends without warm-start support silently ignore the basis.
        dense = solve(lp, backend="simplex", warm_start=first.extra["basis"])
        assert dense.objective == pytest.approx(first.objective)


class TestSweepWarmStart:
    def test_fig7_sweep_warm_vs_cold(self):
        # Acceptance bar: the warm-started exact Fig. 7 sweep spends at
        # least 2x fewer pivots than a cold run, with identical curves.
        graph = example1()
        reports = {}
        curves = {}
        for label, warm in (("cold", False), ("warm", True)):
            engine = Engine(jobs=1)
            mlp = MLPOptions(
                verify=False, compact=False, backend="revised", warm_start=warm
            )
            result = exact_sweep_delay(
                graph, "L4", "L1", 0.0, 140.0, mlp=mlp, engine=engine
            )
            reports[label] = engine.report
            curves[label] = result
        cold, warm = curves["cold"], curves["warm"]
        assert len(cold.segments) == len(warm.segments) == 3
        for a, b in zip(cold.segments, warm.segments):
            assert abs(a.slope - b.slope) <= 1e-9
            assert abs(a.start - b.start) <= 1e-9
            assert abs(a.intercept - b.intercept) <= 1e-9
        assert reports["cold"].lp_iterations >= 2 * reports["warm"].lp_iterations
        assert reports["warm"].warm_start_hits > 0
        assert reports["warm"].pivots_saved > 0

    def test_warm_start_does_not_change_minimize(self):
        graph = example1()
        base = minimize_cycle_time(graph, mlp=MLPOptions(backend="revised"))
        basis = base.extra.get("basis")
        assert basis is not None
        again = minimize_cycle_time(
            graph, mlp=MLPOptions(backend="revised"), warm_start=basis
        )
        assert again.period == pytest.approx(base.period, abs=1e-12)
        assert again.extra["warm_start"] == "hit"

    def test_warm_start_flag_off_ignores_basis(self):
        graph = example1()
        base = minimize_cycle_time(graph, mlp=MLPOptions(backend="revised"))
        off = minimize_cycle_time(
            graph,
            mlp=MLPOptions(backend="revised", warm_start=False),
            warm_start=base.extra.get("basis"),
        )
        assert off.extra["warm_start"] in (None, "cold")
        assert off.period == pytest.approx(base.period)
