"""Smoke tests: every shipped example script runs to completion."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    p
    for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, tmp_path, monkeypatch):
    # Examples that write artifacts should do so somewhere disposable.
    monkeypatch.chdir(tmp_path)
    sys_path = list(sys.path)
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.path[:] = sys_path
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"
