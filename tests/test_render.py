"""Unit tests for the ASCII and SVG renderers."""

import pytest

from repro.clocking.library import three_phase_clock, two_phase_clock
from repro.core.analysis import analyze
from repro.core.mlp import minimize_cycle_time
from repro.errors import ReproError
from repro.render.ascii_art import clock_diagram, schedule_table, strip_diagram
from repro.render.svg import schedule_svg


class TestClockDiagram:
    def test_row_per_phase(self):
        text = clock_diagram(three_phase_clock(90.0))
        lines = text.splitlines()
        assert lines[0].startswith("phi1")
        assert lines[2].startswith("phi3")

    def test_active_and_passive_glyphs(self):
        text = clock_diagram(two_phase_clock(100.0), width=40)
        phi1 = text.splitlines()[0]
        assert "#" in phi1 and "." in phi1

    def test_active_fraction_roughly_matches_duty(self):
        text = clock_diagram(two_phase_clock(100.0), n_cycles=1, width=80)
        phi1 = text.splitlines()[0]
        active = phi1.count("#")
        total = phi1.count("#") + phi1.count(".")
        assert active / total == pytest.approx(0.25, abs=0.05)

    def test_ruler_has_time_labels(self):
        text = clock_diagram(two_phase_clock(100.0), n_cycles=2)
        assert "200" in text

    def test_too_narrow_rejected(self):
        with pytest.raises(ReproError):
            clock_diagram(two_phase_clock(100.0), width=5)

    def test_zero_period_rejected(self):
        from repro.clocking.phase import ClockPhase
        from repro.clocking.schedule import ClockSchedule

        with pytest.raises(ReproError):
            clock_diagram(ClockSchedule(0.0, [ClockPhase("p", 0, 0)]))


class TestStripDiagram:
    def test_fig6_style_strip(self, ex1):
        result = minimize_cycle_time(ex1)
        report = analyze(ex1, result.schedule)
        text = strip_diagram(ex1, report)
        assert "L1" in text and "L4" in text
        assert "X" in text  # shaded latch-delay region
        assert "D=" in text

    def test_departure_annotation_matches_analysis(self, ex1):
        result = minimize_cycle_time(ex1)
        report = analyze(ex1, result.schedule)
        text = strip_diagram(ex1, report)
        for name, timing in report.timings.items():
            assert f"D={timing.departure:g}" in text


class TestScheduleTable:
    def test_contains_all_values(self):
        s = two_phase_clock(100.0)
        text = schedule_table(s)
        assert "Tc = 100" in text
        assert "phi2" in text
        assert "50" in text


class TestSVG:
    def test_well_formed_document(self):
        svg = schedule_svg(two_phase_clock(100.0))
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<rect") >= 4  # 2 phases x 2 cycles

    def test_includes_strips_when_report_given(self, ex1):
        result = minimize_cycle_time(ex1)
        report = analyze(ex1, result.schedule)
        svg = schedule_svg(result.schedule, ex1, report)
        assert "L3" in svg
        # strips add one dark rect per synchronizer
        assert svg.count("#cc6677") == ex1.l

    def test_cycle_guides(self):
        svg = schedule_svg(two_phase_clock(100.0), n_cycles=2)
        assert svg.count("stroke-dasharray") == 3  # t = 0, 100, 200

    def test_escaping(self):
        from repro.clocking.phase import ClockPhase
        from repro.clocking.schedule import ClockSchedule

        s = ClockSchedule(10.0, [ClockPhase("a<b", 0.0, 5.0)])
        svg = schedule_svg(s)
        assert "a&lt;b" in svg

    def test_zero_period_rejected(self):
        from repro.clocking.phase import ClockPhase
        from repro.clocking.schedule import ClockSchedule

        with pytest.raises(ReproError):
            schedule_svg(ClockSchedule(0.0, [ClockPhase("p", 0, 0)]))
