"""Unit tests for waveform sampling, edges, and overlap computations."""

import numpy as np
import pytest

from repro.clocking.library import symmetric_clock, two_phase_clock
from repro.clocking.phase import ClockPhase
from repro.clocking.schedule import ClockSchedule
from repro.clocking.waveform import (
    intervals_in_window,
    overlap_duration,
    phase_edges,
    phases_overlap,
    sample_phase,
    sample_schedule,
    simultaneous_and_is_zero,
)
from repro.errors import ClockError


class TestSampling:
    def test_sample_phase_levels(self):
        s = two_phase_clock(100.0)
        t = np.array([0.0, 10.0, 30.0, 60.0, 99.0, 110.0])
        out = sample_phase(s["phi1"], 100.0, t)
        assert out.tolist() == [True, True, False, False, False, True]

    def test_sample_schedule_shape(self):
        s = symmetric_clock(3, 90.0)
        out = sample_schedule(s, np.linspace(0, 90, 10))
        assert out.shape == (3, 10)

    def test_wrapping_phase(self):
        p = ClockPhase("p", 90.0, 20.0)
        out = sample_phase(p, 100.0, [95.0, 5.0, 50.0])
        assert out.tolist() == [True, True, False]

    def test_zero_period_rejected(self):
        with pytest.raises(ClockError):
            sample_phase(ClockPhase("p", 0, 1), 0.0, [0.0])


class TestEdges:
    def test_two_cycles_of_edges(self):
        s = two_phase_clock(100.0)
        edges = phase_edges(s, "phi1", 0.0, 200.0)
        times = [t for t, _ in edges]
        kinds = [k for _, k in edges]
        assert times == [0.0, 25.0, 100.0, 125.0, 200.0]
        assert kinds == ["rise", "fall", "rise", "fall", "rise"]

    def test_zero_width_phase_has_no_falls(self):
        s = ClockSchedule(10.0, [ClockPhase("p", 2.0, 0.0)])
        edges = phase_edges(s, "p", 0.0, 20.0)
        assert all(kind == "rise" for _, kind in edges)

    def test_empty_window_rejected(self):
        s = two_phase_clock(100.0)
        with pytest.raises(ClockError):
            phase_edges(s, "phi1", 10.0, 5.0)


class TestIntervals:
    def test_clipping(self):
        s = two_phase_clock(100.0)
        ivs = intervals_in_window(s, "phi1", 10.0, 110.0)
        assert ivs == [(10.0, 25.0), (100.0, 110.0)]

    def test_zero_width(self):
        s = ClockSchedule(10.0, [ClockPhase("p", 2.0, 0.0)])
        assert intervals_in_window(s, "p", 0.0, 100.0) == []


class TestOverlap:
    def test_disjoint_phases(self):
        s = two_phase_clock(100.0)
        assert overlap_duration(s, "phi1", "phi2") == 0.0
        assert not phases_overlap(s, "phi1", "phi2")

    def test_overlapping_phases(self):
        s = ClockSchedule(
            100.0, [ClockPhase("a", 0.0, 60.0), ClockPhase("b", 40.0, 30.0)]
        )
        assert overlap_duration(s, "a", "b") == pytest.approx(20.0)
        assert phases_overlap(s, "a", "b")

    def test_self_overlap_is_width(self):
        s = two_phase_clock(100.0)
        assert overlap_duration(s, "phi1", "phi1") == pytest.approx(25.0)

    def test_containment(self):
        s = ClockSchedule(
            100.0, [ClockPhase("wide", 0.0, 80.0), ClockPhase("narrow", 20.0, 10.0)]
        )
        assert overlap_duration(s, "wide", "narrow") == pytest.approx(10.0)


class TestLoopPhaseRequirement:
    """The Section III feedback-loop requirement: AND of phases == 0."""

    def test_nonoverlapping_pair_passes(self):
        s = two_phase_clock(100.0)
        assert simultaneous_and_is_zero(s, ["phi1", "phi2"])

    def test_overlapping_pair_fails(self):
        s = ClockSchedule(
            100.0, [ClockPhase("a", 0.0, 60.0), ClockPhase("b", 40.0, 30.0)]
        )
        assert not simultaneous_and_is_zero(s, ["a", "b"])

    def test_three_phases_pairwise_overlap_but_no_triple(self):
        # a&b overlap, b&c overlap, but never all three at once: AND == 0.
        s = ClockSchedule(
            100.0,
            [
                ClockPhase("a", 0.0, 40.0),
                ClockPhase("b", 30.0, 40.0),
                ClockPhase("c", 60.0, 40.0),
            ],
        )
        assert simultaneous_and_is_zero(s, ["a", "b", "c"])
        assert not simultaneous_and_is_zero(s, ["a", "b"])

    def test_single_phase_loop(self):
        s = two_phase_clock(100.0)
        # A loop controlled by one phase can only satisfy the requirement
        # if that phase never goes active.
        assert not simultaneous_and_is_zero(s, ["phi1"])
        zero = ClockSchedule(100.0, [ClockPhase("z", 0.0, 0.0)])
        assert simultaneous_and_is_zero(zero, ["z"])

    def test_empty_set_trivially_true(self):
        assert simultaneous_and_is_zero(two_phase_clock(100.0), [])
