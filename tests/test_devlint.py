"""Fixture tests for the devlint rules, plus the repo self-check.

Every rule gets at least one seeded-violation snippet (asserting the
exact code and location) and one clean snippet exercising the accepted
shape the rule must *not* flag.  The self-check at the bottom is the
same gate CI runs: the repo lints clean modulo the committed baseline.
"""

from __future__ import annotations

import os
import textwrap

import pytest

from repro.devlint import (
    DevLintError,
    lint_source,
    load_baseline,
    load_source,
    registered_rules,
    run_devlint,
    save_baseline,
)
from repro.devlint.baseline import apply_baseline

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def lint(source: str, path: str = "<memory>", codes: list[str] | None = None):
    return lint_source(textwrap.dedent(source), path=path, codes=codes)


def codes_of(findings) -> list[str]:
    return [f.code for f in findings]


# ----------------------------------------------------------------------
# DEV1xx: async blocking calls
# ----------------------------------------------------------------------

class TestAsyncRules:
    def test_dev101_sleep_in_async_def(self):
        findings = lint(
            """\
            import time

            async def handler():
                time.sleep(0.5)
            """
        )
        assert codes_of(findings) == ["DEV101"]
        assert findings[0].line == 4
        assert findings[0].scope == "handler"

    def test_dev101_clean_asyncio_sleep(self):
        findings = lint(
            """\
            import asyncio

            async def handler():
                await asyncio.sleep(0.5)
            """
        )
        assert findings == []

    def test_dev102_store_call_in_async_def(self):
        findings = lint(
            """\
            class Service:
                async def fetch(self, key):
                    return self.store.get(key)
            """
        )
        assert codes_of(findings) == ["DEV102"]
        assert findings[0].scope == "Service.fetch"

    def test_dev102_transitive_through_sync_helper(self):
        findings = lint(
            """\
            class Service:
                def _lookup(self, key):
                    return self.store.get(key)

                async def fetch(self, key):
                    return self._lookup(key)
            """
        )
        assert codes_of(findings) == ["DEV102"]
        assert "reachable from async code via Service.fetch" in (
            findings[0].message
        )

    def test_dev102_clean_executor_hop(self):
        findings = lint(
            """\
            import asyncio

            class Service:
                async def fetch(self, key):
                    loop = asyncio.get_running_loop()
                    return await loop.run_in_executor(
                        self._executor, self.store.get, key
                    )
            """
        )
        assert findings == []

    def test_dev102_executor_escaped_function_not_flagged(self):
        # _execute runs on the pool: referencing it is not calling it.
        findings = lint(
            """\
            import asyncio

            class Service:
                def _execute(self, key):
                    return self.store.get(key)

                async def fetch(self, key):
                    loop = asyncio.get_running_loop()
                    return await loop.run_in_executor(
                        self._executor, self._execute, key
                    )
            """
        )
        assert findings == []

    def test_dev102_sqlite_direct(self):
        findings = lint(
            """\
            import sqlite3

            async def init():
                conn = sqlite3.connect("results.db")
                return conn
            """
        )
        assert codes_of(findings) == ["DEV102"]

    def test_dev103_open_and_subprocess(self):
        findings = lint(
            """\
            import subprocess

            async def dump(path):
                with open(path) as fh:
                    data = fh.read()
                subprocess.run(["sync"])
                return data
            """
        )
        assert codes_of(findings) == ["DEV103", "DEV103"]

    def test_dev104_executor_shutdown_wait(self):
        findings = lint(
            """\
            async def drain(self):
                self._executor.shutdown(wait=True)
            """
        )
        assert codes_of(findings) == ["DEV104"]

    def test_dev104_clean_shutdown_nowait(self):
        findings = lint(
            """\
            async def drain(self):
                self._executor.shutdown(wait=False)
            """
        )
        assert findings == []

    def test_dev1xx_sync_only_module_clean(self):
        findings = lint(
            """\
            import time

            def poll():
                time.sleep(1.0)
                return self.store.get("k")
            """
        )
        assert findings == []

    def test_dev102_waiver_suppresses(self):
        findings = lint(
            """\
            async def boot(self):
                self.store.flush()  # devlint: waiver[DEV102] startup, loop idle
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# DEV2xx: hash determinism
# ----------------------------------------------------------------------

class TestHashRules:
    def test_dev201_hash_builtin(self):
        findings = lint(
            """\
            def graph_signature(graph):
                return hash(graph)
            """
        )
        assert codes_of(findings) == ["DEV201"]
        assert findings[0].scope == "graph_signature"

    def test_dev202_id_builtin(self):
        findings = lint(
            """\
            def job_key(job):
                return id(job)
            """
        )
        assert codes_of(findings) == ["DEV202"]

    def test_dev203_str_and_fstring(self):
        findings = lint(
            """\
            def options_signature(opts):
                return [str(opts.epsilon), f"{opts.period:.3f}"]
            """
        )
        assert codes_of(findings) == ["DEV203", "DEV203"]
        assert all(f.severity.value == "warning" for f in findings)

    def test_dev204_unsorted_items(self):
        findings = lint(
            """\
            def _mapping_signature(mapping):
                return [(k, v) for k, v in mapping.items()]
            """
        )
        assert codes_of(findings) == ["DEV204"]

    def test_dev204_clean_sorted_items(self):
        findings = lint(
            """\
            def _mapping_signature(mapping):
                return sorted((k, v) for k, v in mapping.items())
            """
        )
        assert findings == []

    def test_dev205_clock_read(self):
        findings = lint(
            """\
            import time

            def sweep_signature(job):
                return [job.start, time.time()]
            """
        )
        assert codes_of(findings) == ["DEV205"]

    def test_dev2xx_only_signature_functions_scoped(self):
        # hash()/clocks are fine outside signature builders.
        findings = lint(
            """\
            import time

            def bucket(key):
                return hash(key) % 64

            def elapsed(t0):
                return time.time() - t0
            """
        )
        assert findings == []

    def test_dev2xx_clean_canonical_jobspec_style(self):
        findings = lint(
            """\
            import hashlib
            import json

            def _f(x):
                return repr(float(x))

            def graph_signature(graph):
                return sorted((e.src, e.dst, _f(e.weight))
                              for e in graph.edges)

            def _digest(payload):
                canon = json.dumps(payload, sort_keys=True)
                return hashlib.sha256(canon.encode()).hexdigest()
            """,
            path="src/repro/engine/jobspec.py",
        )
        assert findings == []


# ----------------------------------------------------------------------
# DEV3xx: observability hygiene
# ----------------------------------------------------------------------

class TestObsRules:
    def test_dev301_span_dropped(self):
        findings = lint(
            """\
            def run(tracer):
                tracer.span("solve")
                work()
            """
        )
        assert codes_of(findings) == ["DEV301"]

    def test_dev301_span_assigned_never_exited(self):
        findings = lint(
            """\
            def run(tracer):
                s = tracer.span("solve")
                work()
            """
        )
        assert codes_of(findings) == ["DEV301"]
        assert "no matching 'with' or __exit__" in findings[0].message

    def test_dev301_clean_with_statement(self):
        findings = lint(
            """\
            def run(tracer):
                with tracer.span("solve"):
                    work()
            """
        )
        assert findings == []

    def test_dev301_clean_try_finally_exit(self):
        # The cli.py root-span shape: conditional span, closed in finally.
        findings = lint(
            """\
            def main(tracer):
                root = tracer.span("repro.cmd") if tracer else None
                if root is not None:
                    root.__enter__()
                try:
                    work()
                finally:
                    if root is not None:
                        root.__exit__(None, None, None)
            """
        )
        assert findings == []

    def test_dev301_clean_cross_method_pair(self):
        # The StageTimer shape: entered in __enter__, exited in __exit__.
        findings = lint(
            """\
            class Span:
                def __enter__(self):
                    self._obs = trace.span(self.stage)
                    self._obs.__enter__()
                    return self

                def __exit__(self, *exc):
                    self._obs.__exit__(None, None, None)
            """
        )
        assert findings == []

    def test_dev301_clean_returned_span(self):
        findings = lint(
            """\
            def open_span(tracer, name):
                return tracer.span(name)
            """
        )
        assert findings == []

    def test_dev302_uncataloged_metric_name(self):
        findings = lint(
            """\
            def record(registry):
                registry.counter("lp_slvoes_total").inc()
            """
        )
        assert codes_of(findings) == ["DEV302"]
        assert "lp_slvoes_total" in findings[0].message

    def test_dev302_clean_cataloged_name(self):
        findings = lint(
            """\
            def record(registry):
                registry.counter("lp_solves_total").inc()
            """
        )
        assert findings == []

    def test_dev302_module_helper_checked(self):
        findings = lint(
            """\
            from repro.obs import metrics

            def record():
                metrics.inc("engine_jbos_total")
            """
        )
        assert codes_of(findings) == ["DEV302"]

    def test_dev302_obs_package_exempt(self):
        findings = lint(
            """\
            def record(registry):
                registry.counter("internal_scratch_total").inc()
            """,
            path="src/repro/obs/metrics.py",
        )
        assert findings == []

    def test_dev303_direct_value_write(self):
        findings = lint(
            """\
            def reset(registry):
                registry.counter("lp_solves_total").value = 0.0
            """
        )
        assert codes_of(findings) == ["DEV303"]

    def test_dev303_clean_inc(self):
        findings = lint(
            """\
            def bump(registry):
                registry.counter("lp_solves_total").inc()
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# DEV4xx: sparsity wiring
# ----------------------------------------------------------------------

class TestSparseRules:
    def test_dev401_to_dense_without_site(self):
        findings = lint(
            """\
            def solve(matrix):
                dense = matrix.to_dense()
                return dense
            """
        )
        assert codes_of(findings) == ["DEV401"]

    def test_dev401_clean_with_site(self):
        findings = lint(
            """\
            def solve(matrix):
                return matrix.to_dense(site="simplex.pivot")
            """
        )
        assert findings == []

    def test_dev402_escape_outside_lp(self):
        findings = lint(
            """\
            def export(program):
                return program.to_arrays()
            """,
            path="src/repro/export/lpformat.py",
        )
        assert codes_of(findings) == ["DEV402"]

    def test_dev402_exempt_inside_lp(self):
        findings = lint(
            """\
            def bridge(program):
                return program.to_arrays()
            """,
            path="src/repro/lp/scipy_backend.py",
        )
        assert findings == []

    def test_dev402_dense_payload_read(self):
        findings = lint(
            """\
            def peek(sf):
                return sf.a[0][0]
            """,
            path="src/repro/core/analysis.py",
        )
        assert codes_of(findings) == ["DEV402"]

    def test_dev402_unrelated_dot_a_not_flagged(self):
        # graphdiag edges carry a bound attribute named 'a'.
        findings = lint(
            """\
            def bound(e):
                return e.a + self.a
            """,
            path="src/repro/lint/graphdiag.py",
        )
        assert findings == []

    def test_dev402_waiver_accepted(self):
        findings = lint(
            """\
            def export(program):
                return program.to_arrays()  # devlint: waiver[DEV402] tiny matrices only
            """,
            path="src/repro/export/lpformat.py",
        )
        assert findings == []


# ----------------------------------------------------------------------
# Framework behavior
# ----------------------------------------------------------------------

class TestFramework:
    def test_every_rule_registered_with_distinct_code(self):
        rules = registered_rules()
        codes = [r.code for r in rules]
        assert len(codes) == len(set(codes))
        assert {
            "DEV101", "DEV102", "DEV103", "DEV104",
            "DEV201", "DEV202", "DEV203", "DEV204", "DEV205",
            "DEV301", "DEV302", "DEV303",
            "DEV401", "DEV402",
        } <= set(codes)

    def test_rule_selection_unknown_code(self):
        with pytest.raises(DevLintError, match="DEV999"):
            lint("x = 1", codes=["DEV999"])

    def test_rule_selection_filters(self):
        source = """\
            import time

            async def h():
                time.sleep(1)
                self.store.get("k")
        """
        assert codes_of(lint(source)) == ["DEV101", "DEV102"]
        assert codes_of(lint(source, codes=["DEV102"])) == ["DEV102"]

    def test_syntax_error_raises(self):
        with pytest.raises(DevLintError, match="cannot parse"):
            load_source("def broken(:\n", path="bad.py")

    def test_baseline_roundtrip_and_staleness(self, tmp_path):
        source = textwrap.dedent(
            """\
            async def h(self):
                self.store.get("k")
            """
        )
        findings = lint_source(source, path="pkg/mod.py")
        assert codes_of(findings) == ["DEV102"]
        baseline_file = str(tmp_path / "baseline.json")
        save_baseline(baseline_file, findings)
        entries = load_baseline(baseline_file)
        actionable, baselined, stale = apply_baseline(findings, entries)
        assert actionable == [] and len(baselined) == 1 and stale == []
        # Fixing the violation leaves the entry stale, never hidden.
        actionable, baselined, stale = apply_baseline([], entries)
        assert actionable == [] and baselined == [] and len(stale) == 1

    def test_baseline_is_line_number_independent(self, tmp_path):
        before = "async def h(self):\n    self.store.get('k')\n"
        after = "# a new leading comment\n\n" + before
        baseline_file = str(tmp_path / "baseline.json")
        save_baseline(
            baseline_file, lint_source(before, path="pkg/mod.py")
        )
        shifted = lint_source(after, path="pkg/mod.py")
        actionable, baselined, _ = apply_baseline(
            shifted, load_baseline(baseline_file)
        )
        assert actionable == [] and len(baselined) == 1

    def test_load_baseline_rejects_malformed(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 1}')
        with pytest.raises(DevLintError):
            load_baseline(str(bad))


# ----------------------------------------------------------------------
# Self-check: the gate CI runs
# ----------------------------------------------------------------------

class TestSelfCheck:
    def test_repo_lints_clean_modulo_baseline(self):
        report = run_devlint(
            [os.path.join(REPO_ROOT, "src", "repro")], root=REPO_ROOT
        )
        assert report.baseline_path is not None, (
            "devlint-baseline.json missing from the repo root"
        )
        assert report.stale_baseline == [], (
            "stale baseline entries: " + repr(report.stale_baseline)
        )
        assert report.ok, "\n" + report.format()

    def test_baseline_is_small_and_deliberate(self):
        entries = load_baseline(
            os.path.join(REPO_ROOT, "devlint-baseline.json")
        )
        # The baseline records accepted design decisions, not a debt
        # dumping ground; growing it should be a conscious review event.
        assert 0 < len(entries) <= 10
        assert {e["code"] for e in entries} == {"DEV303"}
