"""Unit tests for critical-segment extraction and parametric sweeps."""

import pytest

from repro.core.critical import critical_segments
from repro.core.mlp import minimize_cycle_time
from repro.core.parametric import refine_breakpoint, sweep, sweep_delay
from repro.designs import example1
from repro.errors import LPError, ReproError
from repro.lp.result import LPResult, LPStatus


class TestCriticalSegments:
    def test_saturated_case_critical_arcs(self):
        # At Delta_41 = 120 the L4->L1 block dominates (slope-1 region):
        # its propagation constraint must be binding.
        g = example1(120.0)
        result = minimize_cycle_time(g)
        report = critical_segments(result.smo, result.lp_result)
        arcs = {(a.src, a.dst) for a in report.arcs}
        assert ("L4", "L1") in arcs

    def test_segments_are_chains(self):
        g = example1(80.0)
        result = minimize_cycle_time(g)
        report = critical_segments(result.smo, result.lp_result)
        assert report.segments
        for seg in report.segments:
            assert len(seg) >= 2

    def test_multiple_disjoint_segments_possible(self):
        # "Instead of a single critical path, the circuit has several
        # critical combinational delay segments which may be disjoint."
        g = example1(80.0)
        result = minimize_cycle_time(g)
        report = critical_segments(result.smo, result.lp_result)
        covered = {n for seg in report.segments for n in seg}
        assert len(covered) >= 3

    def test_binding_setups_reported(self):
        g = example1(120.0)
        result = minimize_cycle_time(g)
        report = critical_segments(result.smo, result.lp_result)
        assert isinstance(report.critical_setups, list)

    def test_str_render(self):
        g = example1(100.0)
        result = minimize_cycle_time(g)
        text = str(critical_segments(result.smo, result.lp_result))
        assert "critical segments" in text

    def test_failed_result_rejected(self):
        g = example1(100.0)
        result = minimize_cycle_time(g)
        bad = LPResult(status=LPStatus.INFEASIBLE)
        with pytest.raises(LPError):
            critical_segments(result.smo, bad)


class TestSweepMachinery:
    def test_segment_fitting(self):
        # max(4, x) has a kink at 4: slopes 0 then 1.
        result = sweep(lambda x: max(4.0, x), grid=[0, 1, 2, 3, 4, 5, 6, 7, 8])
        assert result.slopes == pytest.approx([0.0, 1.0])
        assert result.breakpoints == pytest.approx([4.0])

    def test_period_at_interpolates(self):
        result = sweep(lambda x: 2 * x + 1, grid=[0.0, 1.0, 2.0])
        assert result.period_at(1.5) == pytest.approx(4.0)

    def test_period_at_outside_range(self):
        result = sweep(lambda x: x, grid=[0.0, 1.0])
        with pytest.raises(ReproError):
            result.period_at(5.0)

    def test_needs_two_points(self):
        with pytest.raises(ReproError):
            sweep(lambda x: x, grid=[1.0])

    def test_non_monotone_grid_rejected(self):
        with pytest.raises(ReproError):
            sweep(lambda x: x, grid=[0.0, 2.0, 1.0])

    def test_refine_breakpoint(self):
        kink = refine_breakpoint(lambda x: max(4.0, x), 0.0, 10.0, tol=1e-5)
        assert kink == pytest.approx(4.0, abs=1e-3)


class TestDualsPredictSweepSlopes:
    """LP duality meets Fig. 7: the shadow price of the swept arc's
    propagation constraint equals the local slope of Tc(Delta_41)."""

    @pytest.mark.parametrize(
        "d41,expected_slope",
        [(10.0, 0.0), (60.0, 0.5), (120.0, 1.0)],
    )
    def test_l2r_dual_equals_curve_slope(self, d41, expected_slope):
        g = example1(d41)
        result = minimize_cycle_time(g)
        # The rhs of L2R[L4->L1] is Delta_DQ4 + Delta_41, so dTc/dDelta_41
        # is that constraint's shadow price.
        dual = result.lp_tc_result.duals["L2R[L4->L1]"]
        assert dual == pytest.approx(expected_slope, abs=1e-6)

    def test_dual_matches_finite_difference(self):
        eps = 1e-4
        lo = minimize_cycle_time(example1(60.0 - eps)).period
        hi = minimize_cycle_time(example1(60.0 + eps)).period
        measured = (hi - lo) / (2 * eps)
        dual = minimize_cycle_time(example1(60.0)).lp_tc_result.duals[
            "L2R[L4->L1]"
        ]
        assert dual == pytest.approx(measured, abs=1e-4)


class TestSweepDelay:
    def test_fig7_points(self):
        result = sweep_delay(
            example1(), "L4", "L1", grid=[0.0, 40.0, 80.0, 120.0]
        )
        assert result.periods == pytest.approx([80.0, 90.0, 110.0, 140.0])

    def test_convexity(self):
        # LP theory: the optimal value is convex in a rhs parameter.
        result = sweep_delay(
            example1(), "L4", "L1", grid=[float(x) for x in range(0, 141, 10)]
        )
        slopes = [
            (b.period - a.period) / (b.parameter - a.parameter)
            for a, b in zip(result.points, result.points[1:])
        ]
        assert all(s2 >= s1 - 1e-9 for s1, s2 in zip(slopes, slopes[1:]))
