"""Unit tests for repro.clocking.schedule: C/K machinery and C1-C4 checks."""

import pytest

from repro.clocking.phase import ClockPhase
from repro.clocking.schedule import ClockSchedule
from repro.errors import ClockError


def make(period=100.0):
    return ClockSchedule(
        period,
        [ClockPhase("phi1", 0.0, 25.0), ClockPhase("phi2", 50.0, 25.0)],
    )


class TestConstruction:
    def test_accessors(self):
        s = make()
        assert s.period == 100.0
        assert s.k == 2
        assert s.names == ("phi1", "phi2")
        assert s.starts == (0.0, 50.0)
        assert s.widths == (25.0, 25.0)

    def test_lookup_by_name_and_index(self):
        s = make()
        assert s["phi2"].start == 50.0
        assert s[0].name == "phi1"

    def test_unknown_phase_raises(self):
        with pytest.raises(ClockError):
            make().index("phi9")

    def test_index_out_of_range_raises(self):
        with pytest.raises(ClockError):
            make().index(5)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ClockError):
            ClockSchedule(10.0, [ClockPhase("p", 0, 1), ClockPhase("p", 2, 1)])

    def test_empty_phase_list_rejected(self):
        with pytest.raises(ClockError):
            ClockSchedule(10.0, [])

    def test_negative_period_rejected(self):
        with pytest.raises(ClockError):
            ClockSchedule(-1.0, [ClockPhase("p", 0, 0)])

    def test_equality_and_hash(self):
        assert make() == make()
        assert hash(make()) == hash(make())
        assert make() != make(period=99.0)


class TestOrderingFlag:
    """Eq. (1): C_ij = 0 if i < j else 1."""

    def test_forward_pair(self):
        assert make().ordering_flag("phi1", "phi2") == 0

    def test_backward_pair(self):
        assert make().ordering_flag("phi2", "phi1") == 1

    def test_same_phase(self):
        assert make().ordering_flag("phi1", "phi1") == 1


class TestPhaseShift:
    """Eq. (12): S_ij = s_i - (s_j + C_ij * Tc).

    Checked against the worked operators in the paper's Appendix.
    """

    def test_forward_shift(self):
        # S_12 = s_1 - s_2 (no cycle crossing).
        assert make().phase_shift("phi1", "phi2") == 0.0 - 50.0

    def test_backward_shift_crosses_cycle(self):
        # S_21 = s_2 - s_1 - Tc.
        assert make().phase_shift("phi2", "phi1") == 50.0 - 0.0 - 100.0

    def test_self_shift_is_minus_period(self):
        # S_ii = -Tc: a same-phase transfer spans one full cycle.
        assert make().phase_shift("phi1", "phi1") == -100.0

    def test_appendix_four_phase_operators(self):
        s = ClockSchedule(
            200.0,
            [
                ClockPhase("phi1", 0.0, 20.0),
                ClockPhase("phi2", 50.0, 20.0),
                ClockPhase("phi3", 100.0, 20.0),
                ClockPhase("phi4", 150.0, 20.0),
            ],
        )
        # The Appendix lists S_13 = s1 - s3 and S_21 = s2 - s1 - Tc etc.
        assert s.phase_shift("phi1", "phi3") == 0.0 - 100.0
        assert s.phase_shift("phi2", "phi1") == 50.0 - 0.0 - 200.0
        assert s.phase_shift("phi4", "phi3") == 150.0 - 100.0 - 200.0

    def test_roundtrip_re_referencing(self):
        # Moving a time from frame i to j and back loses one full period
        # when the pair crosses the cycle boundary both ways.
        s = make()
        there = s.phase_shift("phi1", "phi2")
        back = s.phase_shift("phi2", "phi1")
        assert there + back == -s.period


class TestViolations:
    def test_valid_schedule_has_none(self):
        assert make().violations() == []

    def test_c1_width_exceeds_period(self):
        s = ClockSchedule(10.0, [ClockPhase("p", 0.0, 12.0)])
        tags = {v.constraint for v in s.violations()}
        assert "C1" in tags

    def test_c1_start_exceeds_period(self):
        s = ClockSchedule(10.0, [ClockPhase("p", 11.0, 1.0)])
        assert any(v.constraint == "C1" for v in s.violations())

    def test_c2_out_of_order_starts(self):
        s = ClockSchedule(
            100.0, [ClockPhase("a", 50.0, 10.0), ClockPhase("b", 10.0, 10.0)]
        )
        assert any(v.constraint == "C2" for v in s.violations())

    def test_c3_overlapping_io_pair(self):
        # phi1 feeds phi2 and phi2 feeds phi1 (a two-phase loop): the
        # canonical nonoverlap requirement.  Overlapping phases violate C3.
        s = ClockSchedule(
            100.0, [ClockPhase("a", 0.0, 60.0), ClockPhase("b", 50.0, 40.0)]
        )
        k = [[0, 1], [1, 0]]
        assert any(v.constraint == "C3" for v in s.violations(k))

    def test_c3_respects_k_matrix(self):
        # Without the K entry the same overlap is legal.
        s = ClockSchedule(
            100.0, [ClockPhase("a", 0.0, 60.0), ClockPhase("b", 50.0, 40.0)]
        )
        assert s.violations([[0, 0], [0, 0]]) == []

    def test_k_matrix_as_mapping(self):
        s = ClockSchedule(
            100.0, [ClockPhase("a", 0.0, 60.0), ClockPhase("b", 50.0, 40.0)]
        )
        assert any(
            v.constraint == "C3"
            for v in s.violations({("a", "b"): True, ("b", "a"): True})
        )

    def test_malformed_k_matrix_rejected(self):
        with pytest.raises(ClockError):
            make().violations([[0]])

    def test_validate_raises_with_details(self):
        s = ClockSchedule(10.0, [ClockPhase("p", 0.0, 12.0)])
        with pytest.raises(ClockError, match="C1"):
            s.validate()

    def test_is_valid(self):
        assert make().is_valid()
        assert not ClockSchedule(10.0, [ClockPhase("p", 0.0, 12.0)]).is_valid()


class TestTransforms:
    def test_scaled(self):
        s = make().scaled(2.0)
        assert s.period == 200.0
        assert s["phi2"].start == 100.0

    def test_with_period(self):
        assert make().with_period(123.0).period == 123.0

    def test_normalized_sorts_by_start(self):
        s = ClockSchedule(
            100.0, [ClockPhase("late", 50.0, 10.0), ClockPhase("early", 1.0, 10.0)]
        )
        assert s.normalized().names == ("early", "late")

    def test_as_dict(self):
        d = make().as_dict()
        assert d["period"] == 100.0
        assert d["phases"][1]["name"] == "phi2"
