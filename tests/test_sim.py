"""Unit and cross-validation tests for the cycle-accurate simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.builder import CircuitBuilder
from repro.circuit.generate import random_multiloop_circuit
from repro.clocking.library import two_phase_clock
from repro.core.analysis import analyze
from repro.core.mlp import minimize_cycle_time
from repro.designs import example1
from repro.errors import AnalysisError
from repro.sim.simulator import simulate


class TestBasics:
    def test_settles_quickly_on_example1(self, ex1):
        schedule = minimize_cycle_time(ex1).schedule
        sim = simulate(ex1, schedule)
        assert sim.converged
        assert sim.settled_at is not None and sim.settled_at <= 6

    def test_records_have_absolute_times(self, ex1):
        schedule = minimize_cycle_time(ex1).schedule
        sim = simulate(ex1, schedule)
        rec = sim.records[("L1", 1)]
        assert rec.open_time == schedule["phi1"].start + schedule.period
        assert rec.departure >= rec.open_time

    def test_steady_departures_match_analyze(self, ex1):
        schedule = minimize_cycle_time(ex1).schedule
        sim = simulate(ex1, schedule)
        report = analyze(ex1, schedule)
        for name, d in sim.steady_departures().items():
            assert d == pytest.approx(report.timings[name].departure, abs=1e-9)

    def test_feasible_schedule_simulates_clean(self, ex1):
        schedule = minimize_cycle_time(ex1).schedule
        assert simulate(ex1, schedule).feasible

    def test_violations_on_shrunk_schedule(self, ex1):
        schedule = minimize_cycle_time(ex1).schedule.scaled(0.9)
        sim = simulate(ex1, schedule, cycles=32)
        assert not sim.feasible

    def test_divergent_circuit_never_settles(self, ex1):
        # At a far-too-small period departures drift later every cycle.
        sim = simulate(ex1, two_phase_clock(10.0), cycles=24)
        assert not sim.converged
        with pytest.raises(AnalysisError):
            sim.steady_departures()

    def test_waiting_signal_departs_at_opening(self):
        g = example1(120.0)
        schedule = minimize_cycle_time(g).schedule
        sim = simulate(g, schedule)
        last = sim.cycles - 1
        rec = sim.records[("L3", last)]
        # Fig. 6(c): arrival 20 ns before the phi1 edge; departure at edge.
        assert rec.departure == pytest.approx(rec.open_time)
        assert rec.open_time - rec.arrival == pytest.approx(20.0)


class TestFlipFlops:
    def test_rise_ff_departs_at_edge(self):
        b = CircuitBuilder(["phi1", "phi2"])
        b.latch("L", phase="phi2", setup=1, delay=1)
        b.flipflop("F", phase="phi1", edge="rise", setup=1, delay=1)
        b.path("F", "L", 5)
        b.path("L", "F", 5)
        g = b.build()
        sim = simulate(g, two_phase_clock(100.0))
        rec = sim.records[("F", 1)]
        assert rec.departure == rec.open_time

    def test_fall_ff_departs_at_close(self):
        b = CircuitBuilder(["phi1", "phi2"])
        b.latch("L", phase="phi2", setup=1, delay=1)
        b.flipflop("F", phase="phi1", edge="fall", setup=1, delay=1)
        b.path("F", "L", 5)
        b.path("L", "F", 5)
        sim = simulate(b.build(), two_phase_clock(100.0))
        rec = sim.records[("F", 1)]
        assert rec.departure == rec.close_time


class TestArguments:
    def test_zero_cycles_rejected(self, ex1):
        with pytest.raises(AnalysisError):
            simulate(ex1, two_phase_clock(100.0), cycles=0)

    def test_zero_period_rejected(self, ex1):
        from repro.clocking.phase import ClockPhase
        from repro.clocking.schedule import ClockSchedule

        s = ClockSchedule(0.0, [ClockPhase("phi1", 0, 0), ClockPhase("phi2", 0, 0)])
        with pytest.raises(AnalysisError):
            simulate(ex1, s)

    def test_phase_mismatch_rejected(self, ex1):
        from repro.clocking.library import three_phase_clock

        with pytest.raises(AnalysisError):
            simulate(ex1, three_phase_clock(100.0))


class TestCrossValidation:
    """The simulator and the analyzer implement the same physics twice."""

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(3, 8),
        extra=st.integers(0, 4),
        seed=st.integers(0, 9999),
        slack_factor=st.floats(1.0, 2.0),
    )
    def test_agreement_at_and_above_optimum(self, n, extra, seed, slack_factor):
        g = random_multiloop_circuit(n, n_extra_arcs=extra, k=2, seed=seed)
        schedule = minimize_cycle_time(g).schedule.scaled(slack_factor)
        report = analyze(g, schedule)
        sim = simulate(g, schedule)
        assert sim.converged
        assert sim.feasible == report.feasible
        for name, d in sim.steady_departures().items():
            assert d == pytest.approx(report.timings[name].departure, abs=1e-6)
