"""Unit tests for repro.clocking.phase."""

import pytest

from repro.clocking.phase import ClockPhase
from repro.errors import ClockError


class TestConstruction:
    def test_basic_fields(self):
        p = ClockPhase("phi1", 10.0, 30.0)
        assert p.name == "phi1"
        assert p.start == 10.0
        assert p.width == 30.0
        assert p.end == 40.0

    def test_zero_width_is_legal(self):
        assert ClockPhase("p", 0.0, 0.0).end == 0.0

    def test_empty_name_rejected(self):
        with pytest.raises(ClockError):
            ClockPhase("", 0.0, 1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            ClockPhase("p", -1.0, 1.0)

    def test_negative_width_rejected(self):
        with pytest.raises(ClockError):
            ClockPhase("p", 0.0, -0.5)


class TestIsActive:
    def test_inside_interval(self):
        p = ClockPhase("p", 10.0, 20.0)
        assert p.is_active(15.0, period=100.0)

    def test_half_open_boundaries(self):
        p = ClockPhase("p", 10.0, 20.0)
        assert p.is_active(10.0, period=100.0)
        assert not p.is_active(30.0, period=100.0)

    def test_periodicity(self):
        p = ClockPhase("p", 10.0, 20.0)
        assert p.is_active(115.0, period=100.0)
        assert not p.is_active(105.0, period=100.0)

    def test_wrapping_interval(self):
        # Active [90, 110) in a 100-cycle: wraps to [90,100) + [0,10).
        p = ClockPhase("p", 90.0, 20.0)
        assert p.is_active(95.0, period=100.0)
        assert p.is_active(5.0, period=100.0)
        assert not p.is_active(50.0, period=100.0)

    def test_nonpositive_period_rejected(self):
        with pytest.raises(ClockError):
            ClockPhase("p", 0.0, 1.0).is_active(0.0, period=0.0)


class TestTransforms:
    def test_shifted(self):
        p = ClockPhase("p", 10.0, 5.0).shifted(3.0)
        assert p.start == 13.0 and p.width == 5.0

    def test_scaled(self):
        p = ClockPhase("p", 10.0, 5.0).scaled(2.0)
        assert p.start == 20.0 and p.width == 10.0

    def test_scaled_negative_rejected(self):
        with pytest.raises(ClockError):
            ClockPhase("p", 1.0, 1.0).scaled(-1.0)

    def test_renamed(self):
        p = ClockPhase("p", 1.0, 2.0).renamed("q")
        assert p.name == "q" and p.start == 1.0
