"""Edge-case tests for branches not covered elsewhere."""

import pytest

from repro.clocking.phase import ClockPhase
from repro.clocking.schedule import ClockSchedule
from repro.clocking.waveform import phase_edges
from repro.core.analysis import analyze
from repro.core.mlp import minimize_cycle_time
from repro.designs import gaas_datapath
from repro.export.lpformat import _clean, to_cplex_lp
from repro.lp.expr import var
from repro.lp.model import LinearProgram
from repro.render.ascii_art import strip_diagram
from repro.render.svg import schedule_svg


class TestWaveformEdges:
    def test_wrapping_phase_edges(self):
        s = ClockSchedule(10.0, [ClockPhase("p", 8.0, 4.0)])  # wraps past Tc
        edges = phase_edges(s, "p", 0.0, 20.0)
        times = [t for t, _ in edges]
        assert 8.0 in times and 12.0 in times and 18.0 in times

    def test_custom_window(self):
        s = ClockSchedule(10.0, [ClockPhase("p", 2.0, 3.0)])
        edges = phase_edges(s, "p", t_start=10.0, t_end=20.0)
        assert all(10.0 <= t <= 20.0 for t, _ in edges)


class TestRenderWithFlipFlops:
    def test_strip_diagram_covers_ffs(self):
        g = gaas_datapath()
        result = minimize_cycle_time(g)
        text = strip_diagram(g, analyze(g, result.schedule))
        assert "RES" in text and "PC" in text

    def test_svg_width_parameter(self):
        g = gaas_datapath()
        result = minimize_cycle_time(g)
        svg = schedule_svg(result.schedule, width=1000)
        assert 'width="1000"' in svg


class TestLpFormatSanitizer:
    def test_digit_leading_name(self):
        assert _clean("3state")[0] == "v"

    def test_bracket_replacement(self):
        assert _clean("D[L1]") == "D_L1_"

    def test_non_unit_coefficients_rendered(self):
        lp = LinearProgram()
        lp.minimize(2.5 * var("x") - 0.5 * var("y"))
        lp.add_le(2.5 * var("x") - 0.5 * var("y"), 10, name="c")
        text = to_cplex_lp(lp)
        assert "2.5 x" in text
        assert "- 0.5 y" in text


class TestSimCleanAfter:
    def test_warmup_excludes_startup_transients(self, ex1):
        from repro.sim import simulate

        schedule = minimize_cycle_time(ex1).schedule
        sim = simulate(ex1, schedule, cycles=16)
        assert sim.clean_after(0) == sim.feasible
        assert sim.clean_after(sim.cycles)  # empty tail is trivially clean


class TestCliExtras:
    def test_sweep_points_option(self, tmp_path, capsys):
        from repro.cli import main
        from repro.designs import example1
        from repro.lang.writer import write_circuit

        path = tmp_path / "c.lcd"
        path.write_text(write_circuit(example1(80.0)))
        assert main(
            [
                "sweep", str(path), "L4", "L1",
                "--lo", "0", "--hi", "140", "--points", "8",
            ]
        ) == 0
        assert "segments" in capsys.readouterr().out

    def test_minimize_with_margin_options(self, tmp_path, capsys):
        from repro.cli import main
        from repro.designs import example1
        from repro.lang.writer import write_circuit

        path = tmp_path / "c.lcd"
        path.write_text(write_circuit(example1(80.0)))
        assert main(
            ["minimize", str(path), "--margin", "2", "--min-width", "15"]
        ) == 0
        out = capsys.readouterr().out
        assert "optimal cycle time" in out

    def test_analyze_with_min_width_failure(self, tmp_path, capsys):
        from repro.cli import main
        from repro.core.mlp import minimize_cycle_time as mct
        from repro.designs import example1
        from repro.lang.writer import write_circuit

        g = example1(80.0)
        path = tmp_path / "c.lcd"
        path.write_text(write_circuit(g, mct(g).schedule))
        assert main(["analyze", str(path), "--min-width", "99"]) == 1
