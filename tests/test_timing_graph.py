"""Unit tests for repro.circuit.graph (TimingGraph and DelayArc)."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.elements import Latch
from repro.circuit.graph import DelayArc, TimingGraph
from repro.errors import CircuitError


def two_latch_graph():
    b = CircuitBuilder(["phi1", "phi2"])
    b.latch("A", phase="phi1", setup=1, delay=2)
    b.latch("B", phase="phi2", setup=1, delay=2)
    b.path("A", "B", 5, min_delay=1)
    b.path("B", "A", 7)
    return b.build()


class TestDelayArc:
    def test_negative_delay_rejected(self):
        with pytest.raises(CircuitError):
            DelayArc("a", "b", -1.0)

    def test_negative_min_delay_rejected(self):
        with pytest.raises(CircuitError):
            DelayArc("a", "b", 1.0, min_delay=-0.1)

    def test_min_above_max_rejected(self):
        with pytest.raises(CircuitError):
            DelayArc("a", "b", 1.0, min_delay=2.0)


class TestStructure:
    def test_counts(self):
        g = two_latch_graph()
        assert g.k == 2
        assert g.l == 2
        assert len(g.arcs) == 2

    def test_lookup(self):
        g = two_latch_graph()
        assert g["A"].phase == "phi1"
        assert "A" in g and "Z" not in g
        with pytest.raises(CircuitError):
            g["Z"]

    def test_duplicate_synchronizer_rejected(self):
        g = two_latch_graph()
        with pytest.raises(CircuitError):
            g.add_synchronizer(Latch(name="A", phase="phi1"))

    def test_unknown_phase_rejected(self):
        g = TimingGraph(["p"])
        with pytest.raises(CircuitError):
            g.add_synchronizer(Latch(name="X", phase="q"))

    def test_duplicate_arc_rejected(self):
        g = two_latch_graph()
        with pytest.raises(CircuitError):
            g.add_arc(DelayArc("A", "B", 1.0))

    def test_arc_to_unknown_sync_rejected(self):
        g = two_latch_graph()
        with pytest.raises(CircuitError):
            g.add_arc(DelayArc("A", "Z", 1.0))

    def test_fanin_fanout(self):
        g = two_latch_graph()
        assert [a.src for a in g.fanin("B")] == ["A"]
        assert [a.dst for a in g.fanout("B")] == ["A"]

    def test_max_fanin(self):
        g = two_latch_graph()
        assert g.max_fanin() == 1

    def test_duplicate_phase_names_rejected(self):
        with pytest.raises(CircuitError):
            TimingGraph(["p", "p"])


class TestKMatrix:
    def test_two_phase_loop(self):
        g = two_latch_graph()
        assert g.k_matrix() == [[0, 1], [1, 0]]

    def test_io_phase_pairs(self):
        assert two_latch_graph().io_phase_pairs() == [(0, 1), (1, 0)]

    def test_flipflop_bounded_arcs_excluded(self):
        b = CircuitBuilder(["phi1", "phi2"])
        b.latch("L", phase="phi1")
        b.flipflop("F", phase="phi2")
        b.path("L", "F", 3)  # latch -> FF: no transparency hazard
        b.path("F", "L", 3)  # FF -> latch: likewise
        g = b.build()
        assert g.k_matrix() == [[0, 0], [0, 0]]

    def test_same_phase_arc(self):
        b = CircuitBuilder(["phi1", "phi2"])
        b.latch("A", phase="phi1")
        b.latch("B", phase="phi1")
        b.path("A", "B", 1)
        assert b.build().k_matrix()[0][0] == 1


class TestLoops:
    def test_feedback_loops_found(self):
        loops = two_latch_graph().feedback_loops()
        assert len(loops) == 1
        assert set(loops[0]) == {"A", "B"}

    def test_scc(self):
        sccs = two_latch_graph().strongly_connected_components()
        assert {"A", "B"} in sccs

    def test_phases_of(self):
        g = two_latch_graph()
        assert g.phases_of(["A", "B"]) == {"phi1", "phi2"}


class TestTransforms:
    def test_with_arc_delay(self):
        g = two_latch_graph().with_arc_delay("A", "B", 9.0)
        assert g.arc("A", "B").delay == 9.0
        # min_delay is preserved (clamped to the new max if needed)
        assert g.arc("A", "B").min_delay == 1.0

    def test_with_arc_delay_clamps_min(self):
        g = two_latch_graph().with_arc_delay("A", "B", 0.5)
        assert g.arc("A", "B").min_delay == 0.5

    def test_with_arc_delay_unknown_arc(self):
        with pytest.raises(CircuitError):
            two_latch_graph().with_arc_delay("B", "B", 1.0)

    def test_scaled_delays(self):
        g = two_latch_graph().scaled_delays(2.0)
        assert g.arc("A", "B").delay == 10.0
        assert g["A"].setup == 2.0 and g["A"].delay == 4.0

    def test_subgraph(self):
        g = two_latch_graph().subgraph(["A"])
        assert g.l == 1 and len(g.arcs) == 0

    def test_subgraph_unknown_name(self):
        with pytest.raises(CircuitError):
            two_latch_graph().subgraph(["A", "Z"])

    def test_to_networkx(self):
        nxg = two_latch_graph().to_networkx()
        assert nxg.number_of_nodes() == 2
        assert nxg["A"]["B"]["delay"] == 5
