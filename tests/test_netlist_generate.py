"""Tests for the random gate-netlist generator and the pipeline at scale."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.errors import CircuitError
from repro.netlist.extract import extract_timing_graph
from repro.netlist.generate import random_gate_pipeline
from repro.netlist.sta import combinational_delays
from repro.sim import simulate


class TestGenerator:
    def test_structurally_clean(self):
        nl, _ = random_gate_pipeline(n_stages=4, gates_per_stage=6, seed=1)
        assert nl.check() == []

    def test_deterministic(self):
        a, _ = random_gate_pipeline(seed=7)
        b, _ = random_gate_pipeline(seed=7)
        assert [i.name for i in a.instances] == [i.name for i in b.instances]
        assert [i.cell.name for i in a.instances] == [
            i.cell.name for i in b.instances
        ]

    def test_latch_count(self):
        nl, _ = random_gate_pipeline(n_stages=5, seed=0)
        assert len(nl.sequential_instances()) == 5

    def test_open_pipeline(self):
        nl, phases = random_gate_pipeline(n_stages=3, seed=2, close_loop=False)
        assert nl.check() == []
        g = extract_timing_graph(nl, phases)
        assert g.feedback_loops() == []

    def test_too_few_stages_rejected(self):
        with pytest.raises(CircuitError):
            random_gate_pipeline(n_stages=1)

    def test_too_few_gates_rejected(self):
        with pytest.raises(CircuitError):
            random_gate_pipeline(gates_per_stage=0)


class TestPipelineProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        stages=st.integers(2, 6),
        gates=st.integers(1, 12),
        seed=st.integers(0, 9999),
    )
    def test_full_flow_on_random_netlists(self, stages, gates, seed):
        nl, phases = random_gate_pipeline(stages, gates, seed=seed)
        assert nl.check() == []
        delays = combinational_delays(nl)
        for p in delays:
            assert 0 <= p.min_delay <= p.max_delay
        graph = extract_timing_graph(nl, phases)
        assert graph.l == stages
        result = minimize_cycle_time(graph, mlp=MLPOptions(verify=True))
        assert result.period > 0
        assert simulate(graph, result.schedule).feasible

    @settings(max_examples=10, deadline=None)
    @given(stages=st.integers(2, 5), seed=st.integers(0, 999))
    def test_more_gates_never_speed_up(self, stages, seed):
        small_nl, phases = random_gate_pipeline(stages, 2, seed=seed)
        small = extract_timing_graph(small_nl, phases)
        # Same seed, more gates per stage: every path gets longer or equal.
        big_nl, _ = random_gate_pipeline(stages, 10, seed=seed)
        big = extract_timing_graph(big_nl, phases)
        fast = MLPOptions(verify=False)
        assert (
            minimize_cycle_time(big, mlp=fast).period
            >= minimize_cycle_time(small, mlp=fast).period - 1e-9
        )
