"""Regression tests for every number the paper reports about example 1.

Example 1 (Fig. 5) is a two-stage, two-phase loop; the paper's Section V
quotes its constraint set verbatim, shows optimal schedules at
Delta_41 in {80, 100, 120} (Fig. 6) and sweeps Delta_41 (Fig. 7).
"""

import pytest

from repro.baselines.nrip import nrip_minimize
from repro.core.analysis import analyze
from repro.core.mlp import minimize_cycle_time
from repro.core.parametric import sweep_delay
from repro.designs.example1 import (
    example1,
    example1_nrip_period,
    example1_optimal_period,
)


class TestFig6OperatingPoints:
    """Fig. 6: optimal cycle times at the three published Delta_41 values."""

    @pytest.mark.parametrize(
        "d41,expected",
        [(80.0, 110.0), (100.0, 120.0), (120.0, 140.0)],
    )
    def test_optimal_cycle_times(self, d41, expected):
        assert minimize_cycle_time(example1(d41)).period == pytest.approx(expected)

    def test_fig6c_latch3_waits_20ns(self):
        # "the input to latch 3 becomes valid at 120 ns, 20 ns earlier than
        # the rising edge of phi1; thus departure from latch 3 must wait".
        result = minimize_cycle_time(example1(120.0))
        timing = analyze(example1(120.0), result.schedule).timings["L3"]
        assert timing.waiting == pytest.approx(20.0)

    def test_fig6a_two_distinct_optimal_schedules(self):
        # "the optimal solution will not be unique ... two such solutions
        # for the Delta_41 = 80 ns case", both with Tc = 110 ns.
        from repro.core.constraints import ConstraintOptions

        g = example1(80.0)
        a = minimize_cycle_time(g)
        # Force a different (wider-phase) optimum by fixing phi1's width.
        b = minimize_cycle_time(
            g, ConstraintOptions(fixed_widths={"phi1": 70.0})
        )
        assert a.period == pytest.approx(110.0)
        assert b.period == pytest.approx(110.0)
        assert a.schedule != b.schedule
        assert analyze(g, a.schedule).feasible
        assert analyze(g, b.schedule).feasible


class TestFig7Sweep:
    """Fig. 7: Tc versus Delta_41 for MLP and NRIP."""

    def test_closed_form_everywhere(self):
        for d41 in range(0, 150, 10):
            got = minimize_cycle_time(example1(float(d41))).period
            assert got == pytest.approx(example1_optimal_period(d41)), d41

    def test_three_linear_segments(self):
        sweep = sweep_delay(
            example1(), "L4", "L1", grid=[float(x) for x in range(0, 145, 5)]
        )
        assert sweep.slopes == pytest.approx([0.0, 0.5, 1.0])
        assert sweep.breakpoints == pytest.approx([20.0, 100.0])

    def test_flat_region_value(self):
        # For Delta_41 <= 20, Tc is pinned at 80 ns by block Lc's cycle.
        assert minimize_cycle_time(example1(0.0)).period == pytest.approx(80.0)
        assert minimize_cycle_time(example1(20.0)).period == pytest.approx(80.0)

    def test_borrowing_region_slope_half(self):
        # "Tc increases by 1 ns for every 2-ns increase in Delta_41".
        t60 = minimize_cycle_time(example1(60.0)).period
        t62 = minimize_cycle_time(example1(62.0)).period
        assert t62 - t60 == pytest.approx(1.0)

    def test_saturated_region_slope_one(self):
        t120 = minimize_cycle_time(example1(120.0)).period
        t122 = minimize_cycle_time(example1(122.0)).period
        assert t122 - t120 == pytest.approx(2.0)

    def test_loop_average_and_difference_formula(self):
        # "the optimal cycle time is the maximum of the average delay around
        # the loop and the difference between the delays for each of the
        # cycles making up the loop."
        for d41 in (40.0, 60.0, 80.0, 100.0, 120.0):
            cycle_a = 10 + 20 + 10 + 20  # L1 -> L2 -> L3 including latches
            cycle_b = 10 + 60 + 10 + d41  # L3 -> L4 -> L1
            average = (cycle_a + cycle_b) / 2
            difference = abs(cycle_b - cycle_a)
            expected = max(80.0, average, difference)
            assert minimize_cycle_time(example1(d41)).period == pytest.approx(
                expected
            )


class TestNRIPComparison:
    """Fig. 7's NRIP curve: optimal only at Delta_41 = 60 ns."""

    def test_nrip_closed_form(self):
        for d41 in range(0, 150, 10):
            got = nrip_minimize(example1(float(d41))).period
            assert got == pytest.approx(example1_nrip_period(d41)), d41

    def test_nrip_optimal_exactly_at_60(self):
        matches = [
            d41
            for d41 in range(0, 145, 5)
            if nrip_minimize(example1(float(d41))).period
            == pytest.approx(minimize_cycle_time(example1(float(d41))).period)
        ]
        assert matches == [60]

    def test_nrip_never_below_optimal(self):
        for d41 in range(0, 150, 15):
            nrip = nrip_minimize(example1(float(d41))).period
            opt = minimize_cycle_time(example1(float(d41))).period
            assert nrip >= opt - 1e-9

    def test_nrip_schedule_is_actually_feasible(self):
        result = nrip_minimize(example1(80.0))
        assert analyze(example1(80.0), result.schedule).feasible

    def test_nrip_departures_zero_on_initial_phase(self):
        result = nrip_minimize(example1(80.0))
        assert result.extra["initial_phase"] == "phi2"
        assert result.lp_departures["L2"] == pytest.approx(0.0)
        assert result.lp_departures["L4"] == pytest.approx(0.0)
