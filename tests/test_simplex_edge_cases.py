"""Edge-case tests for the simplex solver's less-traveled paths."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.lp.expr import var
from repro.lp.model import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.simplex import SimplexOptions, solve_simplex


class TestRedundancy:
    def test_duplicate_equality_rows(self):
        # A redundant copy of an equality leaves an artificial basic at
        # zero on a dependent row; the solver must still answer correctly.
        lp = LinearProgram()
        x, y = var("x"), var("y")
        lp.minimize(x + y)
        lp.add_eq(x + y, 4, name="e1")
        lp.add_eq(x + y, 4, name="e2")
        lp.add_ge(x, 1)
        r = solve_simplex(lp)
        assert r.status is LPStatus.OPTIMAL
        assert r.objective == pytest.approx(4.0)

    def test_implied_equality_from_inequalities(self):
        lp = LinearProgram()
        x = var("x")
        lp.minimize(x)
        lp.add_le(x, 3, name="ub")
        lp.add_ge(x, 3, name="lb")
        r = solve_simplex(lp)
        assert r.values["x"] == pytest.approx(3.0)
        assert set(r.binding_constraints()) == {"ub", "lb"}

    def test_contradictory_equalities(self):
        lp = LinearProgram()
        x = var("x")
        lp.add_eq(x, 1)
        lp.add_eq(x, 2)
        assert solve_simplex(lp).status is LPStatus.INFEASIBLE


class TestNumerics:
    def test_negative_rhs_normalization(self):
        # b < 0 rows are sign-flipped internally; duals must flip back.
        lp = LinearProgram()
        x = var("x")
        lp.minimize(x)
        lp.add_ge(-x, -10, name="c")  # i.e. x <= 10
        lp.add_ge(x, 2, name="lb")
        r = solve_simplex(lp)
        assert r.objective == pytest.approx(2.0)
        assert r.duals["lb"] == pytest.approx(1.0)
        assert r.duals["c"] == pytest.approx(0.0, abs=1e-9)

    def test_wide_coefficient_range(self):
        lp = LinearProgram()
        x, y = var("x"), var("y")
        lp.minimize(1e-4 * x + 1e4 * y)
        lp.add_ge(x + y, 1)
        lp.add_le(x, 1e6)
        r = solve_simplex(lp)
        assert r.status is LPStatus.OPTIMAL
        assert r.values["y"] == pytest.approx(0.0, abs=1e-9)

    def test_iteration_cap_raises(self):
        lp = LinearProgram()
        x, y = var("x"), var("y")
        lp.minimize(-x - y)
        lp.add_le(x + y, 10)
        with pytest.raises(SolverError):
            solve_simplex(lp, SimplexOptions(max_iterations=0))

    def test_many_variables_small_basis(self):
        lp = LinearProgram()
        total = var("x0") * 0
        for i in range(40):
            total = total + var(f"x{i}")
            lp.add_le(var(f"x{i}"), 1, name=f"ub{i}")
        lp.minimize(-total)
        r = solve_simplex(lp)
        assert r.objective == pytest.approx(-40.0)

    def test_fractional_solution_exact(self):
        lp = LinearProgram()
        x, y = var("x"), var("y")
        lp.minimize(-2 * x - 3 * y)
        lp.add_le(3 * x + 2 * y, 12, name="a")
        lp.add_le(x + 2 * y, 6, name="b")
        r = solve_simplex(lp)
        # Optimum at intersection: x=3, y=1.5 -> -10.5.
        assert r.values["x"] == pytest.approx(3.0)
        assert r.values["y"] == pytest.approx(1.5)
        assert r.objective == pytest.approx(-10.5)


class TestBlandFallback:
    def test_forced_bland_still_optimal(self):
        lp = LinearProgram()
        x, y, z = var("x"), var("y"), var("z")
        lp.minimize(-x - y - z)
        lp.add_le(x + y, 2)
        lp.add_le(y + z, 2)
        lp.add_le(x + z, 2)
        for opts in (SimplexOptions(bland_after=0), SimplexOptions(bland_after=10**6)):
            r = solve_simplex(lp, opts)
            assert r.objective == pytest.approx(-3.0)
