"""Unit tests for synchronizer elements (latches and flip-flops)."""

import pytest

from repro.circuit.elements import EdgeKind, FlipFlop, Latch
from repro.errors import CircuitError


class TestLatch:
    def test_fields(self):
        l = Latch(name="L1", phase="phi1", setup=2.0, delay=3.0, hold=0.5)
        assert l.is_latch
        assert l.setup == 2.0 and l.delay == 3.0 and l.hold == 0.5

    def test_defaults_zero(self):
        l = Latch(name="L", phase="p")
        assert l.setup == 0.0 and l.delay == 0.0 and l.hold == 0.0

    def test_requires_name_and_phase(self):
        with pytest.raises(CircuitError):
            Latch(name="", phase="p")
        with pytest.raises(CircuitError):
            Latch(name="L", phase="")

    @pytest.mark.parametrize("field", ["setup", "delay", "hold"])
    def test_negative_parameters_rejected(self, field):
        with pytest.raises(CircuitError):
            Latch(name="L", phase="p", **{field: -1.0})

    def test_with_phase(self):
        l = Latch(name="L", phase="a").with_phase("b")
        assert l.phase == "b"

    def test_immutable(self):
        l = Latch(name="L", phase="p")
        with pytest.raises(AttributeError):
            l.setup = 1.0  # type: ignore[misc]


class TestFlipFlop:
    def test_default_edge_is_rise(self):
        assert FlipFlop(name="F", phase="p").edge is EdgeKind.RISE

    def test_not_a_latch(self):
        assert not FlipFlop(name="F", phase="p").is_latch

    def test_edge_coercion_from_string(self):
        f = FlipFlop(name="F", phase="p", edge="fall")
        assert f.edge is EdgeKind.FALL

    def test_invalid_edge_rejected(self):
        with pytest.raises(ValueError):
            FlipFlop(name="F", phase="p", edge="sideways")
