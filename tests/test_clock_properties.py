"""Property tests for the clock algebra (C matrix, S operator, waveforms)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clocking.phase import ClockPhase
from repro.clocking.schedule import ClockSchedule
from repro.clocking.waveform import intervals_in_window, overlap_duration, sample_phase


@st.composite
def schedules(draw, max_k=5):
    k = draw(st.integers(1, max_k))
    period = draw(st.floats(10.0, 1000.0))
    starts = sorted(
        draw(
            st.lists(
                st.floats(0.0, period), min_size=k, max_size=k
            )
        )
    )
    phases = []
    for i, s in enumerate(starts):
        width = draw(st.floats(0.0, period))
        phases.append(ClockPhase(f"p{i}", s, width))
    return ClockSchedule(period, phases)


class TestPhaseShiftAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(schedules())
    def test_self_shift_is_minus_period(self, s):
        for i in range(s.k):
            assert s.phase_shift(i, i) == pytest.approx(-s.period)

    @settings(max_examples=60, deadline=None)
    @given(schedules(), st.data())
    def test_round_trip_loses_exactly_the_crossings(self, s, data):
        i = data.draw(st.integers(0, s.k - 1))
        j = data.draw(st.integers(0, s.k - 1))
        total = s.phase_shift(i, j) + s.phase_shift(j, i)
        crossings = s.ordering_flag(i, j) + s.ordering_flag(j, i)
        assert total == pytest.approx(-crossings * s.period)

    @settings(max_examples=60, deadline=None)
    @given(schedules(), st.data())
    def test_composition_differs_by_whole_periods(self, s, data):
        i = data.draw(st.integers(0, s.k - 1))
        j = data.draw(st.integers(0, s.k - 1))
        k = data.draw(st.integers(0, s.k - 1))
        direct = s.phase_shift(i, k)
        via_j = s.phase_shift(i, j) + s.phase_shift(j, k)
        diff = via_j - direct
        # The two routes cross the cycle boundary a possibly different
        # whole number of times.
        periods = diff / s.period if s.period else 0.0
        assert periods == pytest.approx(round(periods), abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(schedules(), st.data())
    def test_ordering_flag_antisymmetry(self, s, data):
        i = data.draw(st.integers(0, s.k - 1))
        j = data.draw(st.integers(0, s.k - 1))
        if i == j:
            assert s.ordering_flag(i, j) == 1
        else:
            assert s.ordering_flag(i, j) + s.ordering_flag(j, i) == 1


class TestWaveformProperties:
    @settings(max_examples=40, deadline=None)
    @given(schedules(max_k=3), st.data())
    def test_overlap_symmetric(self, s, data):
        a = data.draw(st.integers(0, s.k - 1))
        b = data.draw(st.integers(0, s.k - 1))
        assert overlap_duration(s, a, b) == pytest.approx(
            overlap_duration(s, b, a), abs=1e-9
        )

    @settings(max_examples=40, deadline=None)
    @given(schedules(max_k=3), st.data())
    def test_self_overlap_is_width(self, s, data):
        i = data.draw(st.integers(0, s.k - 1))
        width = min(s[i].width, s.period)  # a phase can't be active longer
        assert overlap_duration(s, i, i) == pytest.approx(width, abs=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(schedules(max_k=3), st.data())
    def test_intervals_total_matches_width_per_cycle(self, s, data):
        i = data.draw(st.integers(0, s.k - 1))
        ivs = intervals_in_window(s, i, 0.0, 2 * s.period)
        total = sum(hi - lo for lo, hi in ivs)
        expected = 2 * min(s[i].width, s.period)
        assert total == pytest.approx(expected, abs=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(schedules(max_k=3), st.data())
    def test_sampling_agrees_with_intervals(self, s, data):
        i = data.draw(st.integers(0, s.k - 1))
        t = data.draw(st.floats(0.0, 2 * float(s.period)))
        ivs = intervals_in_window(s, i, 0.0, 2 * s.period)
        in_interval = any(lo <= t < hi for lo, hi in ivs)
        sampled = bool(sample_phase(s[i], s.period, [t])[0])
        if s[i].width >= s.period:
            return  # always-on phases: boundary conventions differ benignly
        boundary_gap = min(
            (min(abs(t - lo), abs(t - hi)) for lo, hi in ivs),
            default=float("inf"),
        )
        if boundary_gap < 1e-6 or s[i].width < 1e-6:
            return  # float-precision edge-of-interval cases
        assert sampled == in_interval
