"""Stochastic cross-check of the worst-case skew model via jittered simulation."""

import pytest

from repro.clocking.skew import SkewBound
from repro.core.constraints import ConstraintOptions
from repro.core.mlp import minimize_cycle_time
from repro.designs import example1
from repro.errors import AnalysisError
from repro.sim.simulator import simulate

BOUNDS = {"phi1": SkewBound(1.5, 1.5), "phi2": SkewBound(1.5, 1.5)}


class TestJitterMechanics:
    def test_deterministic_given_seed(self, ex1):
        schedule = minimize_cycle_time(ex1).schedule
        a = simulate(ex1, schedule, cycles=12, jitter=BOUNDS, seed=5)
        b = simulate(ex1, schedule, cycles=12, jitter=BOUNDS, seed=5)
        assert {
            k: r.departure for k, r in a.records.items()
        } == {k: r.departure for k, r in b.records.items()}

    def test_different_seeds_differ(self, ex1):
        schedule = minimize_cycle_time(ex1).schedule
        a = simulate(ex1, schedule, cycles=12, jitter=BOUNDS, seed=1)
        b = simulate(ex1, schedule, cycles=12, jitter=BOUNDS, seed=2)
        assert any(
            a.records[k].departure != b.records[k].departure for k in a.records
        )

    def test_zero_jitter_equals_nominal(self, ex1):
        schedule = minimize_cycle_time(ex1).schedule
        zero = {p: SkewBound(0.0, 0.0) for p in ex1.phase_names}
        jittered = simulate(ex1, schedule, cycles=12, jitter=zero)
        plain = simulate(ex1, schedule, cycles=12)
        common = set(jittered.records) & set(plain.records)
        for key in common:
            assert jittered.records[key].departure == pytest.approx(
                plain.records[key].departure
            )

    def test_unknown_phase_rejected(self, ex1):
        schedule = minimize_cycle_time(ex1).schedule
        with pytest.raises(AnalysisError):
            simulate(ex1, schedule, jitter={"zz": SkewBound(1, 1)})

    def test_edges_move_within_bounds(self, ex1):
        schedule = minimize_cycle_time(ex1).schedule
        sim = simulate(ex1, schedule, cycles=8, jitter=BOUNDS, seed=3)
        tc = schedule.period
        for (name, cycle), rec in sim.records.items():
            nominal = schedule[ex1[name].phase].start + cycle * tc
            assert abs(rec.open_time - nominal) <= 1.5 + 1e-9


class TestSkewModelCrossCheck:
    """The worst-case optimizer's promise, checked stochastically."""

    def test_protected_schedule_survives_random_jitter(self):
        g = example1(80.0)
        protected = minimize_cycle_time(g, ConstraintOptions(skew=BOUNDS))
        for seed in range(10):
            sim = simulate(
                g, protected.schedule, cycles=24, jitter=BOUNDS, seed=seed
            )
            assert sim.clean_after(4), seed

    def test_nominal_schedule_fails_some_jitter(self):
        g = example1(80.0)
        nominal = minimize_cycle_time(g)
        failures = 0
        for seed in range(10):
            sim = simulate(
                g, nominal.schedule, cycles=24, jitter=BOUNDS, seed=seed
            )
            if not sim.clean_after(4):
                failures += 1
        # The unprotected optimum has zero margin; random +/-1.5 ns edge
        # movement must break it essentially always.
        assert failures >= 8
