"""Signal handling for the worker pool: no orphans, clean interrupt exits.

Two layers of coverage:

* in-process: the ``siginfo`` fault job reports signal dispositions from
  *inside* a pool worker, proving workers ignore SIGINT (the master owns
  interrupt handling) while keeping SIGTERM terminable;
* subprocess: a real master + hung workers receives SIGINT (whole process
  group, like Ctrl-C) or SIGTERM (master only, like a service manager) and
  must exit 130 with zero surviving multiprocessing children.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.engine.jobspec import FaultJob, job_key
from repro.engine.pool import SerialPool, WorkerPool

pytestmark = pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="signal tests assume a fork-capable platform",
)


class TestWorkerSignalDispositions:
    def test_pool_worker_ignores_sigint_keeps_sigterm(self):
        job = FaultJob(mode="siginfo")
        pool = WorkerPool(workers=1)
        result = pool.run([(job, job_key(job))])[0]
        assert result.ok
        assert result.payload["sigint_ignored"] is True
        assert result.payload["sigterm_default"] is True
        assert result.payload["pid"] != os.getpid()

    def test_serial_pool_leaves_signals_alone(self):
        # In-process execution must not touch the host's handlers.
        before = signal.getsignal(signal.SIGINT)
        job = FaultJob(mode="siginfo")
        result = SerialPool().run([(job, job_key(job))])[0]
        assert result.ok
        assert result.payload["pid"] == os.getpid()
        assert result.payload["sigint_ignored"] is False
        assert signal.getsignal(signal.SIGINT) is before

    def test_master_restores_sigterm_handler(self):
        before = signal.getsignal(signal.SIGTERM)
        job = FaultJob(mode="ok", value=1.0)
        WorkerPool(workers=1).run([(job, job_key(job))])
        assert signal.getsignal(signal.SIGTERM) is before


_MASTER_SCRIPT = textwrap.dedent(
    """
    import multiprocessing, sys
    from repro.engine.jobspec import FaultJob, job_key
    from repro.engine.pool import WorkerPool

    jobs = [FaultJob(mode="hang", seconds=120.0, value=float(i))
            for i in range(2)]
    tasks = [(j, job_key(j)) for j in jobs]
    pool = WorkerPool(workers=2, timeout=None, retries=0)
    print("READY", flush=True)
    try:
        pool.run(tasks)
    except KeyboardInterrupt:
        leftover = [p for p in multiprocessing.active_children()
                    if p.is_alive()]
        sys.exit(130 if not leftover else 99)
    sys.exit(0)
    """
)


def _spawn_master():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.Popen(
        [sys.executable, "-c", _MASTER_SCRIPT],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        start_new_session=True,  # own process group, like a terminal job
        text=True,
    )
    line = proc.stdout.readline()
    assert line.strip() == "READY"
    time.sleep(1.0)  # let both workers pick up their hang jobs
    return proc


class TestInterruptTeardown:
    def test_sigint_to_process_group_exits_130_no_orphans(self):
        """Ctrl-C semantics: SIGINT hits master *and* workers; the workers
        ignore it, the master tears everything down and exits 130."""
        proc = _spawn_master()
        os.killpg(os.getpgid(proc.pid), signal.SIGINT)
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 130, f"stdout={out!r} stderr={err!r}"

    def test_sigterm_to_master_exits_130_no_orphans(self):
        """Service-manager semantics: SIGTERM to the master alone is
        converted to KeyboardInterrupt and drains through the same path."""
        proc = _spawn_master()
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 130, f"stdout={out!r} stderr={err!r}"


class TestCliInterruptExitCode:
    def test_batch_interrupt_returns_130(self, tmp_path, capsys):
        """`repro batch` interrupted mid-run reports the conventional
        128+SIGINT exit code instead of a traceback."""
        from unittest import mock

        from repro.cli import main

        with mock.patch(
            "repro.cli.cmd_batch", side_effect=KeyboardInterrupt
        ):
            code = main(["batch", "whatever.lcd"])
        assert code == 130
        assert "interrupted" in capsys.readouterr().err
