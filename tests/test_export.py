"""Tests for the LP/MPS/DOT exporters."""

import re

import pytest

from repro.core.constraints import build_program
from repro.designs import example1, gaas_datapath
from repro.export.dot import to_dot
from repro.export.lpformat import to_cplex_lp, to_mps


@pytest.fixture
def program(ex1):
    return build_program(ex1).program


class TestCplexLp:
    def test_sections_present(self, program):
        text = to_cplex_lp(program)
        for section in ("Minimize", "Subject To", "End"):
            assert section in text

    def test_objective_is_tc(self, program):
        text = to_cplex_lp(program)
        assert re.search(r"obj:\s+Tc", text)

    def test_names_sanitized(self, program):
        text = to_cplex_lp(program)
        assert "D[L1]" not in text
        assert "D_L1_" in text

    def test_all_constraints_emitted(self, program):
        text = to_cplex_lp(program)
        assert text.count("<=") + text.count(">=") + text.count(" = ") == len(
            program
        )

    def test_free_variables_in_bounds(self):
        from repro.lp.expr import var
        from repro.lp.model import LinearProgram

        lp = LinearProgram()
        lp.set_free("z")
        lp.minimize(var("z"))
        lp.add_ge(var("z"), -5, name="lb")
        text = to_cplex_lp(lp)
        assert "Bounds" in text and "z free" in text

    def test_deterministic(self, program):
        assert to_cplex_lp(program) == to_cplex_lp(program)


class TestMps:
    def test_sections(self, program):
        text = to_mps(program)
        for section in ("NAME", "ROWS", "COLUMNS", "RHS", "ENDATA"):
            assert section in text

    def test_row_kinds(self, program):
        text = to_mps(program)
        assert " N COST" in text
        assert " L " in text  # <= rows
        assert " G " in text  # >= rows

    def test_rhs_values_present(self, program):
        text = to_mps(program)
        # Example 1's L2R rows have rhs 30, 30, 70, 90.
        assert " 90" in text

    def test_gaas_exports_cleanly(self):
        program = build_program(gaas_datapath()).program
        text = to_mps(program)
        assert text.count("\n") > 100


class TestDot:
    def test_structure(self, ex1):
        dot = to_dot(ex1)
        assert dot.startswith("digraph")
        assert '"L1" -> "L2"' in dot
        assert "cluster_0" in dot and "cluster_1" in dot

    def test_edge_labels_carry_delays(self, ex1):
        dot = to_dot(ex1)
        assert "La: 20" in dot
        assert "Ld: 80" in dot

    def test_flipflops_distinct_shape(self):
        dot = to_dot(gaas_datapath())
        assert "doubleoctagon" in dot
        assert "rise-edge FF" in dot and "fall-edge FF" in dot

    def test_min_delays_shown_when_present(self, simple_pipeline):
        dot = to_dot(simple_pipeline)
        assert "(4 min)" in dot

    def test_deterministic(self, ex1):
        assert to_dot(ex1) == to_dot(ex1)
