"""Structured large-design generators: shape, determinism, solvability."""

import pytest

from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.designs import banked_array, pipeline
from repro.errors import CircuitError
from repro.lint import run_lint


class TestPipeline:
    def test_shape(self):
        g = pipeline(8, 4)
        assert len(g.latches) == 32
        # Interior latches fan out to 3 lanes, edge lanes to 2.
        assert len(g.arcs) == 7 * (3 * 4 - 2)
        assert g.k == 2

    def test_phases_alternate(self):
        g = pipeline(4, 1, k=3)
        phases = [g[f"P{s}_0"].phase for s in range(4)]
        assert phases == ["phi1", "phi2", "phi3", "phi1"]

    def test_acyclic(self):
        g = pipeline(6, 3)
        report = run_lint(g)
        assert report.ok, report

    def test_deterministic(self):
        a, b = pipeline(5, 3), pipeline(5, 3)
        assert [(x.src, x.dst, x.delay) for x in a.arcs] == [
            (x.src, x.dst, x.delay) for x in b.arcs
        ]

    def test_validation(self):
        with pytest.raises(CircuitError):
            pipeline(1, 4)
        with pytest.raises(CircuitError):
            pipeline(4, 0)
        with pytest.raises(CircuitError):
            pipeline(4, 4, k=1)


class TestBankedArray:
    def test_shape(self):
        g = banked_array(4, 8)
        assert len(g.latches) == 4 * 8 + 2
        # Per bank: A->head, depth-1 chain arcs, tail->O; plus O->A.
        assert len(g.arcs) == 4 * (8 + 1) + 1

    def test_loop_lands_on_address_phase(self):
        g = banked_array(2, 6, k=4)
        assert g["A"].phase == "phi1"
        report = run_lint(g)
        assert report.ok, report

    def test_validation(self):
        with pytest.raises(CircuitError):
            banked_array(0, 8)
        with pytest.raises(CircuitError):
            banked_array(4, 0)
        with pytest.raises(CircuitError):
            banked_array(4, 8, k=1)
        # Loop length depth+2 must be a multiple of k.
        with pytest.raises(CircuitError):
            banked_array(4, 7)

    def test_bank_count_does_not_change_optimum(self):
        # Every bank runs the same delay profile shifted by its index;
        # the critical loop is whichever bank is slowest, and adding
        # banks beyond 5 only repeats the same 5 delay profiles.
        small = minimize_cycle_time(
            banked_array(5, 8), mlp=MLPOptions(verify=False)
        )
        large = minimize_cycle_time(
            banked_array(7, 8), mlp=MLPOptions(verify=False)
        )
        assert large.period == pytest.approx(small.period)


class TestSolvable:
    @pytest.mark.parametrize(
        "factory",
        [lambda: pipeline(10, 4), lambda: banked_array(4, 10)],
    )
    def test_default_pipeline_end_to_end(self, factory):
        # Full default pipeline: verified, compacted, feasible.
        result = minimize_cycle_time(factory())
        assert result.period > 0
        assert result.feasible
