"""Property and golden tests for the P1 solution sanitizer.

The sanitizer must accept every result Algorithm MLP produces -- across
random circuits, every available LP backend and both fixpoint kernels --
and must reject any solution whose departures are perturbed by more than
its tolerance.  On the paper's three case studies the solved points check
out clean with slack resolution far below the reporting precision.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.lint import sanitize_result, sanitize_solution
from repro.lp.backends import available_backends

try:
    from repro.circuit.generate import random_multiloop_circuit, random_pipeline
except ImportError:  # pragma: no cover
    random_pipeline = None  # type: ignore[assignment]

BACKENDS = available_backends()
TOL = 1e-6


def _random_graph(kind: str, n: int, k: int, seed: int):
    if kind == "pipeline":
        return random_pipeline(n, k=k, seed=seed)
    return random_multiloop_circuit(n, n_extra_arcs=2, k=k, seed=seed)


class TestSanitizerAcceptsMLP:
    @settings(max_examples=20, deadline=None)
    @given(
        kind=st.sampled_from(["pipeline", "multiloop"]),
        n=st.integers(min_value=2, max_value=8),
        k=st.sampled_from([2, 3, 4]),
        seed=st.integers(min_value=0, max_value=10_000),
        backend=st.sampled_from(BACKENDS),
        kernel=st.sampled_from(["dict", "array"]),
    )
    def test_accepts_every_mlp_result(self, kind, n, k, seed, backend, kernel):
        graph = _random_graph(kind, n, k, seed)
        result = minimize_cycle_time(
            graph, mlp=MLPOptions(backend=backend, kernel=kernel)
        )
        report = sanitize_result(graph, result, tol=TOL)
        assert report.ok, report.format()
        assert report.checked > 0
        assert report.min_slack >= -TOL

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
        sign=st.sampled_from([-1.0, 1.0]),
        magnitude=st.floats(min_value=1e-3, max_value=10.0),
    )
    def test_rejects_perturbed_departures(self, n, seed, sign, magnitude):
        graph = random_pipeline(n, k=2, seed=seed)
        result = minimize_cycle_time(graph)
        victim = next(iter(result.departures))
        perturbed = dict(result.departures)
        perturbed[victim] += sign * magnitude
        report = sanitize_solution(
            graph, result.schedule, perturbed, tol=TOL
        )
        assert not report.ok, (
            f"perturbing {victim} by {sign * magnitude:g} must be caught"
        )

    def test_sanitize_flag_end_to_end(self):
        graph = random_pipeline(4, k=2, seed=7)
        result = minimize_cycle_time(graph, mlp=MLPOptions(sanitize=True))
        report = result.extra["sanitize"]
        assert report.ok


class TestPaperCaseStudies:
    @pytest.mark.parametrize("fixture", ["ex1", "ex2", "gaas"])
    def test_case_study_is_clean(self, fixture, request):
        graph = request.getfixturevalue(fixture)
        result = minimize_cycle_time(graph, mlp=MLPOptions(sanitize=True))
        report = result.extra["sanitize"]
        assert report.ok
        assert report.min_slack >= -TOL
        assert report.tightness_residual <= TOL
        assert "clean" in report.format()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_example1_clean_on_every_backend(self, ex1, backend):
        result = minimize_cycle_time(ex1, mlp=MLPOptions(backend=backend))
        report = sanitize_result(ex1, result, tol=TOL)
        assert report.ok, report.format()
