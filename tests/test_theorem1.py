"""Tests for the executable Theorem-1 construction (problem P3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.generate import random_multiloop_circuit
from repro.core.analysis import analyze
from repro.core.constraints import build_maxplus_system
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.theorem1 import solve_p3
from repro.designs import example1, example2


class TestOnPaperCircuits:
    @pytest.mark.parametrize("d41", [0.0, 40.0, 80.0, 120.0])
    def test_p3_matches_p2_optimum(self, d41):
        g = example1(d41)
        p2 = minimize_cycle_time(g, mlp=MLPOptions(verify=False))
        p3 = solve_p3(g)
        # Theorem 1: the augmented problem has the same optimal value.
        assert p3.period == pytest.approx(p2.period)
        # And it never degraded across augmentation rounds.
        for tc in p3.period_trace:
            assert tc == pytest.approx(p3.period_trace[0])

    def test_p3_solution_satisfies_l2_exactly(self, ex1):
        p3 = solve_p3(ex1)
        system = build_maxplus_system(ex1, p3.schedule)
        assert system.residual(p3.departures) <= 1e-6

    def test_p3_schedule_verifies(self, ex2):
        p3 = solve_p3(ex2)
        assert p3.period == pytest.approx(300.0)
        assert analyze(ex2, p3.schedule).feasible

    def test_history_records_pins(self):
        # At Delta_41 = 120 the compactness-free LP leaves room for floating
        # departures somewhere across the paper circuits; at minimum the
        # construction terminates with a consistent record.
        p3 = solve_p3(example1(120.0))
        assert p3.rounds == len(p3.history) + 1 or p3.rounds >= 1
        for round_pins in p3.history:
            for _, kind in round_pins:
                assert kind in ("zero", "arrival")


class TestOnRandomCircuits:
    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(3, 8),
        extra=st.integers(0, 4),
        seed=st.integers(0, 9999),
    )
    def test_p3_equals_mlp_everywhere(self, n, extra, seed):
        g = random_multiloop_circuit(n, n_extra_arcs=extra, k=2, seed=seed)
        mlp = minimize_cycle_time(g, mlp=MLPOptions(verify=False))
        p3 = solve_p3(g)
        assert p3.period == pytest.approx(mlp.period, rel=1e-9, abs=1e-7)
        system = build_maxplus_system(g, p3.schedule)
        assert system.residual(p3.departures) <= 1e-6
