"""Reproduce the paper's example 1 (Figs. 5-7) from the public API.

Shows: the optimal schedules at the three published Delta_41 values, the
Fig. 6-style strip diagram, the piecewise-linear Tc(Delta_41) curve with
its breakpoints, and the NRIP comparison.

Run with::

    python examples/paper_example1.py
"""

from repro import analyze, minimize_cycle_time, nrip_minimize, strip_diagram, sweep_delay
from repro.designs.example1 import example1


def main() -> None:
    print("== Fig. 6: optimal schedules at three operating points ==")
    for d41 in (80.0, 100.0, 120.0):
        circuit = example1(d41)
        result = minimize_cycle_time(circuit)
        print(f"\nDelta_41 = {d41:g} ns  ->  Tc* = {result.period:g} ns")
        print(strip_diagram(circuit, analyze(circuit, result.schedule)))

    print("\n== Fig. 7: Tc versus Delta_41 ==")
    sweep = sweep_delay(
        example1(), "L4", "L1", grid=[float(x) for x in range(0, 145, 5)]
    )
    print(f"segment slopes: {sweep.slopes}")
    print(f"breakpoints at Delta_41 = {sweep.breakpoints}")
    print(f"{'Delta_41':>9} {'MLP Tc':>8} {'NRIP Tc':>8}")
    for d41 in range(0, 145, 10):
        mlp = minimize_cycle_time(example1(float(d41))).period
        nrip = nrip_minimize(example1(float(d41))).period
        marker = "  <- NRIP optimal here" if abs(mlp - nrip) < 1e-9 else ""
        print(f"{d41:>9} {mlp:>8g} {nrip:>8g}{marker}")


if __name__ == "__main__":
    main()
