"""Theorem 1, executed: watch the LP relaxation become a P1 solution.

Walks the paper's Section IV machinery on example 1:

1. solve the LP relaxation P2 and show the raw departure values;
2. point out where they float above what the nonlinear constraints L2
   allow (the relaxation's "slack" solutions);
3. run the proof's augmentation procedure (problem P3) and the practical
   alternative, Algorithm MLP's fixpoint slide;
4. confirm both land on the same cycle time -- Theorem 1 in action.

Run with::

    python examples/theorem1_walkthrough.py
"""

from repro.core.constraints import build_maxplus_system, build_program, d_var
from repro.core.constraints import schedule_from_values
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.theorem1 import solve_p3
from repro.designs.example1 import example1
from repro.lp.backends import solve


def main() -> None:
    circuit = example1(120.0)

    print("== Step 1: the LP relaxation P2 ==")
    smo = build_program(circuit)
    lp_point = solve(smo.program).raise_for_status()
    schedule = schedule_from_values(circuit, lp_point.values)
    departures = {
        s.name: lp_point.values[d_var(s.name)] for s in circuit.synchronizers
    }
    print(f"Tc*(P2) = {lp_point.objective:g} ns at {schedule}")
    for name, value in sorted(departures.items()):
        print(f"  D[{name}] = {value:g}")

    print("\n== Step 2: where the relaxation floats above L2 ==")
    system = build_maxplus_system(circuit, schedule)
    target = system.apply(departures)
    floating = {
        n: (departures[n], target[n])
        for n in system.nodes
        if departures[n] > target[n] + 1e-9
    }
    if floating:
        for name, (got, want) in sorted(floating.items()):
            print(
                f"  D[{name}] = {got:g} but max(0, arrivals) = {want:g} "
                f"-> violates the equality form of L2"
            )
    else:
        print("  (this LP vertex already satisfies L2 exactly)")

    print("\n== Step 3a: the proof's construction (problem P3) ==")
    p3 = solve_p3(circuit)
    print(
        f"converged in {p3.rounds} round(s); Tc stayed at "
        f"{p3.period_trace[0]:g} through every augmentation: {p3.period_trace}"
    )
    for round_idx, pins in enumerate(p3.history, start=1):
        for latch, case in pins:
            rule = "D = 0 (case a)" if case == "zero" else "D = A (case b)"
            print(f"  round {round_idx}: pinned {latch} with {rule}")

    print("\n== Step 3b: Algorithm MLP's slide (the practical route) ==")
    mlp = minimize_cycle_time(circuit, mlp=MLPOptions(iteration="jacobi"))
    print(
        f"slide finished in {mlp.slide_sweeps} Jacobi sweep(s); "
        f"Tc = {mlp.period:g} ns"
    )

    print("\n== Step 4: Theorem 1 ==")
    assert abs(p3.period - mlp.period) < 1e-9
    print(
        f"Tc*(P1) = Tc*(P2) = {mlp.period:g} ns; departures agree where the "
        f"optimum is unique:"
    )
    for name in sorted(p3.departures):
        print(
            f"  {name}: P3 -> {p3.departures[name] + 0.0:g}, "
            f"MLP slide -> {mlp.departures[name] + 0.0:g}"
        )


if __name__ == "__main__":
    main()
