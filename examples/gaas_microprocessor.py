"""The GaAs MIPS datapath case study (Section V, Figs. 10-11, Table I).

Optimizes the clock of the reconstructed 250 MHz GaAs microcomputer
datapath model, prints the optimal schedule (phi3, the register-file
precharge pulse, comes out totally overlapped by phi1), checks setup and
hold, and writes an SVG of the schedule next to this script.

Run with::

    python examples/gaas_microprocessor.py
"""

import pathlib

from repro import analyze, check_hold, clock_diagram, minimize_cycle_time, schedule_svg
from repro.core.constraints import build_program
from repro.core.critical import critical_segments
from repro.designs.gaas import (
    GAAS_TARGET_PERIOD,
    TRANSISTOR_COUNTS,
    TRANSISTOR_TOTAL,
    gaas_datapath,
)


def main() -> None:
    print("== Table I: transistor counts of the major datapath blocks ==")
    for block, count in TRANSISTOR_COUNTS.items():
        print(f"  {block:<32} {count:>7,}")
    print(f"  {'Total':<32} {TRANSISTOR_TOTAL:>7,}")

    circuit = gaas_datapath()
    smo = build_program(circuit)
    print(
        f"\nmodel: {circuit.l} synchronizers "
        f"({len(circuit.latches)} latches + {len(circuit.flipflops)} flip-flops), "
        f"{len(circuit.arcs)} combinational arcs, "
        f"{smo.paper_constraint_count} constraints"
    )

    result = minimize_cycle_time(circuit)
    ratio = result.period / GAAS_TARGET_PERIOD
    print(
        f"\noptimal cycle time: {result.period:g} ns "
        f"({(ratio - 1) * 100:.0f}% above the {GAAS_TARGET_PERIOD:g} ns target)"
    )
    print(clock_diagram(result.schedule))

    p1, p3 = result.schedule["phi1"], result.schedule["phi3"]
    overlapped = p3.start >= p1.start and p3.end <= p1.end
    print(
        f"\nphi3 (register-file precharge) active [{p3.start:g}, {p3.end:g}] ns; "
        f"phi1 active [{p1.start:g}, {p1.end:g}] ns -> "
        f"{'totally overlapped' if overlapped else 'not overlapped'}"
    )
    k = circuit.k_matrix()
    print(f"K13 = {k[0][2]}, K31 = {k[2][0]} (no direct phi1<->phi3 paths)")

    timing = analyze(circuit, result.schedule)
    hold = check_hold(circuit, result.schedule)
    print(
        f"\nsetup check: {'clean' if timing.feasible else 'VIOLATED'} "
        f"(worst slack {timing.worst_slack:.3g} ns)"
    )
    print(
        f"hold check with zero contamination delays (the paper's model is "
        f"long-path only): worst slack {hold.worst_slack:.3g} ns -- real "
        f"signoff needs extracted min delays, see repro.core.shortpath"
    )

    critical = critical_segments(result.smo, result.lp_result)
    print("\ncritical combinational segments:")
    for segment in critical.segments[:5]:
        print("  " + " -> ".join(segment))

    out = pathlib.Path.cwd() / "gaas_schedule.svg"
    out.write_text(schedule_svg(result.schedule, circuit, timing))
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
