"""Gate level to optimal clock: the full preprocessing-plus-MLP pipeline.

The paper assumes latch-to-latch delays have already been extracted; this
example performs that step with the library's gate-level substrate: build
a small two-phase datapath at the gate level, run the min/max combinational
STA, extract the SMO timing graph, and optimize the clock.

Run with::

    python examples/netlist_extraction.py
"""

from repro import (
    analyze,
    check_hold,
    default_library,
    extract_timing_graph,
    minimize_cycle_time,
    simulate,
    write_circuit,
)
from repro.netlist import Netlist, combinational_delays


def build_netlist() -> Netlist:
    """A 4-bit-ish accumulator slice: register -> adder -> register -> back."""
    lib = default_library()
    nl = Netlist("accumulator", lib)
    nl.add_input("clk_a")
    nl.add_input("clk_b")

    # Stage 1: accumulator latch feeding a ripple of full-adder slices.
    nl.add("acc", "DLATCH", D="result", G="clk_a", Q="acc_q")
    nl.add("fa0s", "FA_S", A="acc_q", B="acc_q", CI="acc_q", Z="s0")
    nl.add("fa0c", "FA_C", A="acc_q", B="acc_q", CI="acc_q", Z="c0")
    nl.add("fa1s", "FA_S", A="s0", B="acc_q", CI="c0", Z="s1")
    nl.add("fa1c", "FA_C", A="s0", B="acc_q", CI="c0", Z="c1")
    nl.add("fa2s", "FA_S", A="s1", B="acc_q", CI="c1", Z="s2")

    # Stage 2: pipeline latch and a small output mux back to the input.
    nl.add("pipe", "DLATCH", D="s2", G="clk_b", Q="pipe_q")
    nl.add("sel", "MUX2", A="pipe_q", B="pipe_q", S="pipe_q", Z="muxed")
    nl.add("drv", "BUF", A="muxed", Z="result")
    return nl


def main() -> None:
    netlist = build_netlist()
    problems = netlist.check()
    assert not problems, problems

    print("== combinational STA (latch-to-latch min/max path delays) ==")
    for path in combinational_delays(netlist):
        print(
            f"  {path.start:>8} -> {path.end:<8} "
            f"min {path.min_delay:.3f}  max {path.max_delay:.3f} ns"
        )

    graph = extract_timing_graph(netlist, {"clk_a": "phi1", "clk_b": "phi2"})
    print("\n== extracted SMO timing graph (.lcd) ==")
    print(write_circuit(graph))

    result = minimize_cycle_time(graph)
    print(f"optimal cycle time: {result.period:.3f} ns")
    print(result.schedule)

    timing = analyze(graph, result.schedule)
    hold = check_hold(graph, result.schedule)
    sim = simulate(graph, result.schedule)
    print(
        f"setup: {'ok' if timing.feasible else 'FAIL'}; "
        f"hold: {'ok' if hold.feasible else 'FAIL'}; "
        f"simulation settles in {sim.settled_at} cycle(s) and "
        f"{'matches' if sim.feasible else 'contradicts'} the analysis"
    )


if __name__ == "__main__":
    main()
