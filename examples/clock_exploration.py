"""Explore clocking trade-offs: baselines, constraints, skew and hold.

Uses the paper's example 2 to show how the library answers common
clock-design questions:

* how much does latch-level optimization buy over edge-triggered design?
* what does each baseline algorithm give up?
* what do extra requirements (minimum phase widths, skew margins) cost?
* is the optimized schedule hold-safe, and how robust is it to skew?

Run with::

    python examples/clock_exploration.py
"""

from repro import (
    ConstraintOptions,
    analyze,
    binary_search_minimize,
    borrowing_minimize,
    check_hold,
    edge_triggered_minimize,
    minimize_cycle_time,
    nrip_minimize,
)
from repro.clocking.skew import SkewBound, worst_case_schedules
from repro.core.reporting import format_comparison
from repro.designs.example2 import example2


def main() -> None:
    circuit = example2()
    optimal = minimize_cycle_time(circuit)

    print("== algorithm comparison (example 2) ==")
    rows = [
        {"algorithm": "MLP (this paper)", "Tc": optimal.period, "vs optimal": 1.0},
    ]
    for label, period in [
        ("NRIP (Dagenais & Rumin)", nrip_minimize(circuit).period),
        ("borrowing, 1 pass (TV)", borrowing_minimize(circuit, 1).period),
        ("borrowing, converged", borrowing_minimize(circuit, 40).period),
        ("binary search (Agrawal)", binary_search_minimize(circuit)),
        ("edge-triggered", edge_triggered_minimize(circuit).period),
    ]:
        rows.append(
            {"algorithm": label, "Tc": period, "vs optimal": period / optimal.period}
        )
    print(format_comparison(rows, ["algorithm", "Tc", "vs optimal"]))

    print("\n== cost of additional clock requirements ==")
    req_rows = []
    for label, options in [
        ("none (paper's minimal set)", ConstraintOptions()),
        ("min phase width 40 ns", ConstraintOptions(min_width=40.0)),
        ("min separation 10 ns", ConstraintOptions(min_separation=10.0)),
        ("5 ns setup margin (skew)", ConstraintOptions(setup_margin=5.0)),
    ]:
        period = minimize_cycle_time(circuit, options).period
        req_rows.append({"requirement": label, "Tc": period})
    print(format_comparison(req_rows, ["requirement", "Tc"]))

    print("\n== robustness of the optimal schedule ==")
    hold = check_hold(circuit, optimal.schedule)
    print(f"hold check at the optimum: worst slack {hold.worst_slack:g} ns")

    def corners_clean(schedule, bounds):
        survivors = 0
        corners = worst_case_schedules(schedule, bounds)
        for corner in corners:
            report = analyze(circuit, corner)
            if report.divergent_cycle is None and not report.setup_violations:
                survivors += 1
        return survivors, len(corners)

    bounds = {name: SkewBound(2.0, 2.0) for name in circuit.phase_names}
    got, total = corners_clean(optimal.schedule, bounds)
    print(
        f"nominal optimum surviving +/-2 ns independent phase skew: "
        f"{got}/{total} corners"
    )

    # Re-optimize with worst-case skew awareness: every corner must pass.
    protected = minimize_cycle_time(circuit, ConstraintOptions(skew=bounds))
    got, total = corners_clean(protected.schedule, bounds)
    print(
        f"skew-aware optimum (Tc = {protected.period:g} ns, "
        f"+{protected.period - optimal.period:g} ns): "
        f"{got}/{total} corners survive"
    )


if __name__ == "__main__":
    main()
