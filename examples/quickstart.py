"""Quickstart: build a small latch circuit and find its optimal clock.

Run with::

    python examples/quickstart.py
"""

from repro import (
    CircuitBuilder,
    analyze,
    check_structure,
    clock_diagram,
    minimize_cycle_time,
)


def main() -> None:
    # A three-stage loop on a two-phase clock.  Latches take 3 ns to
    # propagate and need 2 ns of setup; the combinational blocks between
    # them take 12, 9 and 15 ns.
    builder = CircuitBuilder(phases=["phi1", "phi2"])
    builder.latch("A", phase="phi1", setup=2, delay=3)
    builder.latch("B", phase="phi2", setup=2, delay=3)
    builder.latch("C", phase="phi1", setup=2, delay=3)
    builder.path("A", "B", delay=12)
    builder.path("B", "C", delay=9)
    builder.path("C", "A", delay=15)
    circuit = builder.build()

    # Sanity-check the structure (loop phases, latch parameters).
    report = check_structure(circuit)
    report.raise_on_error()

    # The design problem: minimum cycle time + an optimal clock schedule.
    result = minimize_cycle_time(circuit)
    print(f"optimal cycle time: {result.period:g} ns")
    print(result.schedule)
    print()
    print(clock_diagram(result.schedule))
    print()

    # The analysis problem: verify the circuit at that schedule.
    timing = analyze(circuit, result.schedule)
    print(f"verified: {timing.feasible}, worst slack {timing.worst_slack:g} ns")
    for name, t in timing.timings.items():
        print(
            f"  {name}: arrives {t.arrival:g}, departs {t.departure:g} "
            f"(slack {t.slack:g})"
        )


if __name__ == "__main__":
    main()
