"""Fig. 7: Tc versus Delta_41 for example 1, MLP against NRIP.

Regenerates both curves over the full swept range, asserts the published
shape -- flat at 80 ns until Delta_41 = 20, slope 1/2 until 100, slope 1
beyond; NRIP above MLP everywhere except a single touch at Delta_41 = 60
-- and emits the series.
"""

import pytest

from repro.baselines.nrip import nrip_minimize
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.parametric import sweep_delay
from repro.core.reporting import format_comparison
from repro.designs.example1 import (
    example1,
    example1_nrip_period,
    example1_optimal_period,
)

GRID = [float(x) for x in range(0, 145, 5)]
FAST = MLPOptions(verify=False)


def run_sweep():
    mlp_curve = sweep_delay(example1(), "L4", "L1", grid=GRID, mlp=FAST)
    nrip_curve = [
        nrip_minimize(example1(d), mlp=FAST).period for d in GRID
    ]
    return mlp_curve, nrip_curve


def test_fig7_tc_versus_delta41(benchmark, emit):
    mlp_curve, nrip_curve = benchmark(run_sweep)

    # Piecewise-linear structure exactly as published.
    assert mlp_curve.slopes == pytest.approx([0.0, 0.5, 1.0])
    assert mlp_curve.breakpoints == pytest.approx([20.0, 100.0])

    rows = []
    touches = []
    for d41, mlp, nrip in zip(GRID, mlp_curve.periods, nrip_curve):
        assert mlp == pytest.approx(example1_optimal_period(d41))
        assert nrip == pytest.approx(example1_nrip_period(d41))
        assert nrip >= mlp - 1e-9
        if abs(nrip - mlp) < 1e-9:
            touches.append(d41)
        rows.append({"Delta_41": d41, "MLP Tc": mlp, "NRIP Tc": nrip})

    # "The NRIP algorithm produces an optimal solution for Delta_41 = 60.
    # For all other values of Delta_41, the cycle time found by NRIP is
    # suboptimal."
    assert touches == [60.0]

    table = format_comparison(rows, ["Delta_41", "MLP Tc", "NRIP Tc"], "Fig. 7")
    footer = (
        f"\nMLP breakpoints: {mlp_curve.breakpoints} (paper: [20, 100])"
        f"\nMLP slopes: {mlp_curve.slopes} (paper: 0, 1/2, 1)"
        f"\nNRIP touches the optimum at Delta_41 = {touches} (paper: 60 ns)"
    )
    emit("fig7_sweep", table + footer)
