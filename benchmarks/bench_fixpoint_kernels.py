"""Dict vs compiled-array fixpoint kernels: the PR's headline speedup.

The compiled kernels (:mod:`repro.maxplus.compiled`) exist to make the
non-LP part of Algorithm MLP scale: on generated multiloop circuits the
dict kernels spend their time walking per-node ``WeightedArc`` lists,
while the array kernels run one ``np.maximum.reduceat`` per sweep.  This
benchmark times both on the same systems from 8 to 1024 latches, checks
the array kernels win by >= 5x at 256 latches and beyond, verifies the
optimum is unchanged (Tc within 1e-9), and measures what the structure
cache saves on re-compiles (the delay-sweep hot path).

Set ``REPRO_BENCH_QUICK=1`` (the CI smoke job does) for a reduced grid.
"""

import os
import time

from repro.circuit.generate import random_multiloop_circuit
from repro.clocking.phase import ClockPhase
from repro.clocking.schedule import ClockSchedule
from repro.core.constraints import build_maxplus_system
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.reporting import format_comparison
from repro.errors import DivergentTimingError
from repro.maxplus import compiled
from repro.maxplus.fixpoint import least_fixpoint, slide

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SIZES = [8, 16, 32, 64] if QUICK else [8, 16, 32, 64, 128, 256, 512, 1024]
#: sizes on which the >= 5x acceptance ratio is asserted.
ASSERT_FLOOR = 256
TC_CHECK_SIZE = 64 if QUICK else 256


def _circuit(n):
    return random_multiloop_circuit(n, n_extra_arcs=n // 2, k=2, seed=n)


def _system(graph, scale=1.0):
    """A convergent max-plus system for ``graph`` (period grown on demand).

    ``scale`` nudges the period so two calls produce equal structure with
    different weights (the structure-cache hot path).
    """
    period = 256.0 * scale
    while True:
        half = period / 2
        schedule = ClockSchedule(
            period,
            [
                ClockPhase("phi1", 0.0, half - 1.0),
                ClockPhase("phi2", half, half - 1.0),
            ],
        )
        system = build_maxplus_system(graph, schedule)
        try:
            least_fixpoint(system, method="event")
            return system
        except DivergentTimingError:
            period *= 2.0


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure():
    rows = []
    for n in SIZES:
        graph = _circuit(n)
        system = _system(graph)
        base = least_fixpoint(system, method="event").values
        start = {
            name: (base[name] + 25.0 if name not in system.frozen else base[name])
            for name in system.nodes
        }
        compiled.compile_system(system)  # exclude one-time lowering below

        fix_dict = _best_of(lambda: least_fixpoint(system, method="jacobi"))
        fix_array = _best_of(
            lambda: least_fixpoint(system, method="jacobi", kernel="array")
        )
        slide_dict = _best_of(lambda: slide(system, start, method="jacobi"))
        slide_array = _best_of(
            lambda: slide(system, start, method="jacobi", kernel="array")
        )

        rows.append(
            {
                "latches": n,
                "arcs": len(system.arcs),
                "fix dict ms": round(fix_dict * 1e3, 3),
                "fix array ms": round(fix_array * 1e3, 3),
                "fix speedup": round(fix_dict / fix_array, 1),
                "slide dict ms": round(slide_dict * 1e3, 3),
                "slide array ms": round(slide_array * 1e3, 3),
                "slide speedup": round(slide_dict / slide_array, 1),
            }
        )
    return rows


def measure_cache():
    """Structure-cache economics: cold compile vs weight-only re-cost."""
    rows = []
    for n in SIZES[-3:]:
        graph = _circuit(n)
        a = _system(graph)
        b = _system(graph, scale=1.001953125)  # same structure, new weights

        def cold():
            compiled.clear_cache()
            a.__dict__.pop("_compiled", None)
            compiled.compile_system(a)

        def warm():
            b.__dict__.pop("_compiled", None)
            compiled.compile_system(b)

        cold_s = _best_of(cold)
        compiled.clear_cache()
        a.__dict__.pop("_compiled", None)
        compiled.compile_system(a)  # populate the structure cache
        warm_s = _best_of(warm)
        stats = compiled.cache_stats()
        assert stats["structure_hits"] >= 3, stats
        rows.append(
            {
                "latches": n,
                "compile miss ms": round(cold_s * 1e3, 3),
                "recost hit ms": round(warm_s * 1e3, 3),
                "ratio": round(cold_s / max(warm_s, 1e-9), 1),
            }
        )
    return rows


def test_fixpoint_kernel_speedup(benchmark, emit):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    cache_rows = measure_cache()

    # Correctness guard: the kernels must agree before speed means anything
    # (the agreement proper is tested exhaustively in
    # tests/test_fixpoint_kernels.py).
    graph = _circuit(TC_CHECK_SIZE)
    tc = {
        kernel: minimize_cycle_time(
            graph, mlp=MLPOptions(verify=False, kernel=kernel)
        ).period
        for kernel in ("dict", "array")
    }
    assert abs(tc["dict"] - tc["array"]) <= 1e-9, tc

    # The acceptance ratio: >= 5x on the 256-latch row; larger rows only
    # get a looser floor so one noisy timing cannot fail the suite.
    for row in rows:
        if row["latches"] == ASSERT_FLOOR:
            assert row["fix speedup"] >= 5.0, row
            assert row["slide speedup"] >= 5.0, row
        elif row["latches"] > ASSERT_FLOOR:
            assert row["fix speedup"] >= 3.0, row
            assert row["slide speedup"] >= 3.0, row
    # A weight-only re-cost must beat a cold structural lowering.
    for row in cache_rows:
        assert row["recost hit ms"] <= row["compile miss ms"], row

    table = format_comparison(
        rows,
        [
            "latches",
            "arcs",
            "fix dict ms",
            "fix array ms",
            "fix speedup",
            "slide dict ms",
            "slide array ms",
            "slide speedup",
        ],
        "Fixpoint kernels: dict vs compiled numpy (jacobi, least fixpoint + slide)",
    )
    table += "\n" + format_comparison(
        cache_rows,
        ["latches", "compile miss ms", "recost hit ms", "ratio"],
        f"Structure cache: cold lowering vs weight re-cost "
        f"(Tc agreement at n={TC_CHECK_SIZE}: |dTc| <= 1e-9)",
    )
    emit("fixpoint_kernels", table)
