"""Fig. 6: optimal schedules and departure strips for example 1.

Regenerates the three published operating points (Delta_41 = 80, 100 and
120 ns -> Tc = 110, 120 and 140 ns), asserts the cycle times and the
"signal waits 20 ns at latch 3" observation, and emits the Fig. 6-style
timing diagrams.
"""

import pytest

from repro.core.analysis import analyze
from repro.core.mlp import minimize_cycle_time
from repro.designs.example1 import example1
from repro.render.ascii_art import schedule_table, strip_diagram

CASES = [(80.0, 110.0), (100.0, 120.0), (120.0, 140.0)]


def solve_all():
    return [
        (d41, minimize_cycle_time(example1(d41)))
        for d41, _ in CASES
    ]


def test_fig6_operating_points(benchmark, emit):
    results = benchmark(solve_all)

    sections = []
    for (d41, expected), (_, result) in zip(CASES, results):
        assert result.period == pytest.approx(expected)
        circuit = example1(d41)
        report = analyze(circuit, result.schedule)
        assert report.feasible
        sections.append(
            f"--- Delta_41 = {d41:g} ns -> Tc* = {result.period:g} ns "
            f"(paper: {expected:g} ns) ---"
        )
        sections.append(schedule_table(result.schedule))
        sections.append(strip_diagram(circuit, report))
        sections.append("")

    # Fig. 6(c) detail: the input to latch 3 becomes valid 20 ns before the
    # rising edge of phi1 and must wait.
    circuit = example1(120.0)
    report = analyze(circuit, minimize_cycle_time(circuit).schedule)
    assert report.timings["L3"].waiting == pytest.approx(20.0)
    sections.append(
        "Fig. 6(c) check: latch 3 input arrives "
        f"{report.timings['L3'].waiting:g} ns before phi1 rises (paper: 20 ns)"
    )
    emit("fig6_schedules", "\n".join(sections))
