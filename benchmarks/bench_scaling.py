"""Section IV complexity claims: constraint count and runtime scaling.

The paper argues the number of LP constraints is bounded by
``4k + (F + 1) l`` -- linear in the number of latches -- and reports
seconds-scale runtimes for the 91-constraint GaAs model on a DECStation
3100.  This benchmark sweeps the circuit size, asserts the linear
constraint growth, and times MLP end to end.
"""

import time

import pytest

from repro.circuit.generate import random_multiloop_circuit
from repro.core.constraints import build_maxplus_system, build_program
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.reporting import format_comparison
from repro.maxplus.fixpoint import least_fixpoint

SIZES = [8, 16, 32, 64]
FAST = MLPOptions(verify=False)


def _fixpoint_ms(system, kernel):
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        least_fixpoint(system, method="jacobi", kernel=kernel)
        best = min(best, time.perf_counter() - t0)
    return round(best * 1e3, 3)


def measure():
    rows = []
    for n in SIZES:
        circuit = random_multiloop_circuit(n, n_extra_arcs=n // 2, k=2, seed=n)
        smo = build_program(circuit)
        start = time.perf_counter()
        result = minimize_cycle_time(circuit, mlp=FAST)
        elapsed = time.perf_counter() - start
        # Fixpoint kernel comparison at the optimal schedule (the slide's
        # workload; see bench_fixpoint_kernels.py for the full sweep).
        system = build_maxplus_system(circuit, result.schedule)
        rows.append(
            {
                "latches": n,
                "arcs": len(circuit.arcs),
                "constraints": smo.explicit_constraint_count,
                "bound 4k+(F+1)l": 4 * circuit.k + (circuit.max_fanin() + 1) * n,
                "Tc": result.period,
                "seconds": round(elapsed, 4),
                "fix dict ms": _fixpoint_ms(system, "dict"),
                "fix array ms": _fixpoint_ms(system, "array"),
            }
        )
    return rows


def test_constraint_count_scales_linearly(benchmark, emit):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    for row in rows:
        # The paper's bound counts the same explicit rows we generate
        # (setup + propagation + clock rows); check it holds.
        assert row["constraints"] <= row["bound 4k+(F+1)l"] + 4 * 2 + 1
    # Linearity: constraints per latch stays (nearly) constant.
    ratios = [r["constraints"] / r["latches"] for r in rows]
    assert max(ratios) / min(ratios) < 1.6

    # "its execution time ... was hardly noticeable (on the order of a few
    # seconds)" for 91 constraints in 1990 -- the largest instance here has
    # several hundred rows and must stay well under that today.
    assert rows[-1]["seconds"] < 10.0

    emit(
        "scaling",
        format_comparison(
            rows,
            [
                "latches",
                "arcs",
                "constraints",
                "bound 4k+(F+1)l",
                "Tc",
                "seconds",
                "fix dict ms",
                "fix array ms",
            ],
            "Constraint-count and runtime scaling (Section IV claims)",
        ),
    )
