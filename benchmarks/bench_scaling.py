"""Section IV complexity claims: constraint count and runtime scaling.

The paper argues the number of LP constraints is bounded by
``4k + (F + 1) l`` -- linear in the number of latches -- and reports
seconds-scale runtimes for the 91-constraint GaAs model on a DECStation
3100.  This benchmark sweeps the circuit size, asserts the linear
constraint growth, and times MLP end to end.

The per-backend columns are driven from the LP backend registry
(:func:`repro.lp.backends.available_backends`), so a newly registered
backend shows up here without edits; ``+check`` variants are excluded
because they deliberately solve twice.

Set ``REPRO_BENCH_QUICK=1`` (the CI smoke job does) for a reduced grid.
"""

import os
import time

import pytest

from repro.circuit.generate import random_multiloop_circuit
from repro.core.constraints import (
    build_maxplus_system,
    build_program,
    recost_arc_delay,
)
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.reporting import format_comparison
from repro.designs.generators import banked_array, pipeline
from repro.lp.backends import available_backends
from repro.lp.sparse import DENSE_STATS
from repro.maxplus.fixpoint import least_fixpoint

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SIZES = [8, 16] if QUICK else [8, 16, 32, 64]

#: Every registered single-solve backend; "+check" variants solve the
#: same program twice by design and would only duplicate columns.
BACKENDS = [b for b in available_backends() if "+" not in b]


def _fixpoint_ms(system, kernel):
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        least_fixpoint(system, method="jacobi", kernel=kernel)
        best = min(best, time.perf_counter() - t0)
    return round(best * 1e3, 3)


def measure():
    rows = []
    for n in SIZES:
        circuit = random_multiloop_circuit(n, n_extra_arcs=n // 2, k=2, seed=n)
        smo = build_program(circuit)
        start = time.perf_counter()
        result = minimize_cycle_time(circuit, mlp=MLPOptions(verify=False))
        elapsed = time.perf_counter() - start
        row = {
            "latches": n,
            "arcs": len(circuit.arcs),
            "constraints": smo.explicit_constraint_count,
            "bound 4k+(F+1)l": 4 * circuit.k + (circuit.max_fanin() + 1) * n,
            "Tc": result.period,
            "seconds": round(elapsed, 4),
        }
        for backend in BACKENDS:
            fast = MLPOptions(backend=backend, verify=False)
            out = minimize_cycle_time(circuit, mlp=fast)
            row[f"Tc ({backend})"] = out.period
            row[f"lp ms ({backend})"] = round(
                out.extra["stages"]["lp_solve"] * 1000, 3
            )
        # Fixpoint kernel comparison at the optimal schedule (the slide's
        # workload; see bench_fixpoint_kernels.py for the full sweep).
        system = build_maxplus_system(circuit, result.schedule)
        row["fix dict ms"] = _fixpoint_ms(system, "dict")
        row["fix array ms"] = _fixpoint_ms(system, "array")
        rows.append(row)
    return rows


def test_constraint_count_scales_linearly(benchmark, emit):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    for row in rows:
        # The paper's bound counts the same explicit rows we generate
        # (setup + propagation + clock rows); check it holds.
        assert row["constraints"] <= row["bound 4k+(F+1)l"] + 4 * 2 + 1
        # Every registered backend reproduces the same optimum.
        for backend in BACKENDS:
            assert row[f"Tc ({backend})"] == pytest.approx(
                row["Tc"], abs=1e-6
            )
    # Linearity: constraints per latch stays (nearly) constant.
    ratios = [r["constraints"] / r["latches"] for r in rows]
    assert max(ratios) / min(ratios) < 1.6

    # "its execution time ... was hardly noticeable (on the order of a few
    # seconds)" for 91 constraints in 1990 -- the largest instance here has
    # several hundred rows and must stay well under that today.
    assert rows[-1]["seconds"] < 10.0

    emit(
        "scaling",
        format_comparison(
            rows,
            [
                "latches",
                "arcs",
                "constraints",
                "bound 4k+(F+1)l",
                "Tc",
                "seconds",
            ]
            + [f"lp ms ({b})" for b in BACKENDS]
            + ["fix dict ms", "fix array ms"],
            "Constraint-count and runtime scaling (Section IV claims)",
        ),
    )


# ---------------------------------------------------------------------------
# Sparse-LP scaling grid: structured generator families to 10^4+ latches.
#
# The random-multiloop sweep above tops out at a few hundred constraints;
# this grid drives the CSR/CSC substrate where it matters.  Every point
# solves the same circuit with the sparse revised simplex and with the
# graph-native critical-cycle backend and demands bit-tight agreement,
# then re-solves a one-arc recosted variant from the cold optimal basis
# to show the warm-start pivot savings the eta-file factorization buys.
#
# The full grid ends at a 10,242-latch banked array whose sparse solve
# runs for minutes (the pivot count, not memory, is the cost: the LP is
# massively degenerate, and degeneracy grows with chain *depth* -- a
# bank-heavy 80x128 array prices far fewer stalled pivots than a
# depth-heavy 16x640 one of identical size); the QUICK grid stops at a
# 2,050-latch banked array that solves in seconds and is what the CI
# smoke job runs.
# ---------------------------------------------------------------------------

LARGE_GRID = (
    [("pipeline", 32, 8), ("banked", 8, 128), ("banked", 8, 256)]
    if QUICK
    else [
        ("pipeline", 32, 8),
        ("banked", 8, 128),
        ("pipeline", 64, 32),
        ("banked", 8, 512),
        ("banked", 80, 128),
    ]
)


def _generator_circuit(kind, a, b):
    return pipeline(a, b) if kind == "pipeline" else banked_array(a, b)


def measure_sparse():
    rows = []
    # verify/compact off: time the raw solver, not the a-posteriori
    # simulation or the second compacted solve.
    fast = dict(verify=False, compact=False)
    for kind, a, b in LARGE_GRID:
        circuit = _generator_circuit(kind, a, b)
        smo = build_program(circuit)
        dense_before = DENSE_STATS.count

        t0 = time.perf_counter()
        sparse = minimize_cycle_time(
            circuit, mlp=MLPOptions(backend="sparse", **fast)
        )
        sparse_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        cycle = minimize_cycle_time(
            circuit, mlp=MLPOptions(backend="cycle", **fast)
        )
        cycle_s = time.perf_counter() - t0

        # Recost one arc (rhs-only change, structurally identical LP) and
        # re-solve from the cold run's optimal basis.
        arc = circuit.arcs[0]
        recosted = recost_arc_delay(smo, arc.src, arc.dst, arc.delay + 5.0)
        basis = sparse.lp_result.extra.get("basis")
        t0 = time.perf_counter()
        warm = minimize_cycle_time(
            circuit,
            mlp=MLPOptions(backend="sparse", **fast),
            warm_start=basis,
            smo=recosted,
        )
        warm_s = time.perf_counter() - t0

        rows.append(
            {
                "design": f"{kind} {a}x{b}",
                "latches": len(circuit.latches),
                "arcs": len(circuit.arcs),
                "constraints": smo.explicit_constraint_count,
                "Tc (sparse)": sparse.period,
                "Tc (cycle)": cycle.period,
                "|diff|": abs(sparse.period - cycle.period),
                "pivots cold": sparse.lp_result.iterations,
                "pivots warm": warm.lp_result.iterations,
                "warm": warm.lp_result.extra.get("warm_start"),
                "sparse s": round(sparse_s, 2),
                "cycle s": round(cycle_s, 2),
                "warm s": round(warm_s, 2),
                "dense views": DENSE_STATS.count - dense_before,
            }
        )
    return rows


def test_sparse_scaling_grid(benchmark, emit):
    rows = benchmark.pedantic(measure_sparse, rounds=1, iterations=1)

    for row in rows:
        # The tentpole acceptance bar: sparse LP and the critical-cycle
        # backend agree on the optimum to 1e-9 at every size.
        assert row["|diff|"] <= 1e-9, row
        # O(nnz) all the way down: no dense (m, n) materialization
        # anywhere on the sparse or cycle path.
        assert row["dense views"] == 0, row
        # Warm-starting from the cold optimal basis skips phase 1 and
        # repivots only locally; the savings must be drastic, not
        # marginal (the recost moves a single rhs entry).
        assert row["warm"] == "hit", row
        assert row["pivots warm"] < max(20, row["pivots cold"] // 10), row
        # Constraint growth stays linear in latches, as for the random
        # sweep above.
        assert row["constraints"] <= 6 * row["latches"] + 12

    emit(
        "scaling_sparse",
        format_comparison(
            rows,
            [
                "design",
                "latches",
                "arcs",
                "constraints",
                "Tc (sparse)",
                "Tc (cycle)",
                "pivots cold",
                "pivots warm",
                "sparse s",
                "cycle s",
                "warm s",
            ],
            "Sparse LP vs critical cycle on generator families",
        ),
    )
