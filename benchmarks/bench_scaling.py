"""Section IV complexity claims: constraint count and runtime scaling.

The paper argues the number of LP constraints is bounded by
``4k + (F + 1) l`` -- linear in the number of latches -- and reports
seconds-scale runtimes for the 91-constraint GaAs model on a DECStation
3100.  This benchmark sweeps the circuit size, asserts the linear
constraint growth, and times MLP end to end.

The per-backend columns are driven from the LP backend registry
(:func:`repro.lp.backends.available_backends`), so a newly registered
backend shows up here without edits; ``+check`` variants are excluded
because they deliberately solve twice.

Set ``REPRO_BENCH_QUICK=1`` (the CI smoke job does) for a reduced grid.
"""

import os
import time

import pytest

from repro.circuit.generate import random_multiloop_circuit
from repro.core.constraints import build_maxplus_system, build_program
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.reporting import format_comparison
from repro.lp.backends import available_backends
from repro.maxplus.fixpoint import least_fixpoint

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SIZES = [8, 16] if QUICK else [8, 16, 32, 64]

#: Every registered single-solve backend; "+check" variants solve the
#: same program twice by design and would only duplicate columns.
BACKENDS = [b for b in available_backends() if "+" not in b]


def _fixpoint_ms(system, kernel):
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        least_fixpoint(system, method="jacobi", kernel=kernel)
        best = min(best, time.perf_counter() - t0)
    return round(best * 1e3, 3)


def measure():
    rows = []
    for n in SIZES:
        circuit = random_multiloop_circuit(n, n_extra_arcs=n // 2, k=2, seed=n)
        smo = build_program(circuit)
        start = time.perf_counter()
        result = minimize_cycle_time(circuit, mlp=MLPOptions(verify=False))
        elapsed = time.perf_counter() - start
        row = {
            "latches": n,
            "arcs": len(circuit.arcs),
            "constraints": smo.explicit_constraint_count,
            "bound 4k+(F+1)l": 4 * circuit.k + (circuit.max_fanin() + 1) * n,
            "Tc": result.period,
            "seconds": round(elapsed, 4),
        }
        for backend in BACKENDS:
            fast = MLPOptions(backend=backend, verify=False)
            out = minimize_cycle_time(circuit, mlp=fast)
            row[f"Tc ({backend})"] = out.period
            row[f"lp ms ({backend})"] = round(
                out.extra["stages"]["lp_solve"] * 1000, 3
            )
        # Fixpoint kernel comparison at the optimal schedule (the slide's
        # workload; see bench_fixpoint_kernels.py for the full sweep).
        system = build_maxplus_system(circuit, result.schedule)
        row["fix dict ms"] = _fixpoint_ms(system, "dict")
        row["fix array ms"] = _fixpoint_ms(system, "array")
        rows.append(row)
    return rows


def test_constraint_count_scales_linearly(benchmark, emit):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    for row in rows:
        # The paper's bound counts the same explicit rows we generate
        # (setup + propagation + clock rows); check it holds.
        assert row["constraints"] <= row["bound 4k+(F+1)l"] + 4 * 2 + 1
        # Every registered backend reproduces the same optimum.
        for backend in BACKENDS:
            assert row[f"Tc ({backend})"] == pytest.approx(
                row["Tc"], abs=1e-6
            )
    # Linearity: constraints per latch stays (nearly) constant.
    ratios = [r["constraints"] / r["latches"] for r in rows]
    assert max(ratios) / min(ratios) < 1.6

    # "its execution time ... was hardly noticeable (on the order of a few
    # seconds)" for 91 constraints in 1990 -- the largest instance here has
    # several hundred rows and must stay well under that today.
    assert rows[-1]["seconds"] < 10.0

    emit(
        "scaling",
        format_comparison(
            rows,
            [
                "latches",
                "arcs",
                "constraints",
                "bound 4k+(F+1)l",
                "Tc",
                "seconds",
            ]
            + [f"lp ms ({b})" for b in BACKENDS]
            + ["fix dict ms", "fix array ms"],
            "Constraint-count and runtime scaling (Section IV claims)",
        ),
    )
