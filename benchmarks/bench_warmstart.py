"""Warm-started revised simplex: pivot savings on sweeps (Section VI).

Section VI anticipates parametric design studies -- families of LPs that
differ only in a few right-hand sides.  The revised backend threads the
previous grid point's optimal basis into each successive solve, which
must never change any reported cycle time (the warm-start guard falls
back to a cold solve whenever the basis is unusable) but should pay for
itself in skipped pivots.  This benchmark runs the paper's Fig. 7 sweep
and a scaling suite twice -- cold and warm -- and asserts:

* every Tc agrees between the runs to 1e-9, and
* the warm runs spend at least 2x fewer total simplex pivots.

Set ``REPRO_BENCH_QUICK=1`` (the CI smoke job does) for a reduced grid.
"""

import os

import pytest

from repro.circuit.generate import random_multiloop_circuit
from repro.core.mlp import MLPOptions
from repro.core.parametric import exact_sweep_delay, sweep_delay
from repro.core.reporting import format_comparison
from repro.designs import example1
from repro.engine import Engine

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SIZES = [8, 16] if QUICK else [8, 16, 32, 64]
GRID = range(0, 145, 15) if QUICK else range(0, 145, 5)

WARM = MLPOptions(verify=False, compact=False, backend="revised")
COLD = MLPOptions(verify=False, compact=False, backend="revised", warm_start=False)


def _sweep_case(name, run):
    """Run one sweep cold and warm; return a comparison row."""
    row = {"case": name}
    periods = {}
    for mode, mlp in (("cold", COLD), ("warm", WARM)):
        engine = Engine(jobs=1)
        result = run(engine, mlp)
        report = engine.report
        periods[mode] = [p.period for p in result.points] + [
            s.slope for s in result.segments
        ] + [s.start for s in result.segments]
        row[f"{mode} pivots"] = report.lp_iterations
        if mode == "warm":
            row["hits"] = report.warm_start_hits
            row["saved"] = report.pivots_saved
    assert len(periods["cold"]) == len(periods["warm"])
    for cold_v, warm_v in zip(periods["cold"], periods["warm"]):
        assert abs(cold_v - warm_v) <= 1e-9
    row["ratio"] = round(row["cold pivots"] / max(1, row["warm pivots"]), 2)
    return row


def run_warmstart():
    rows = []
    fig7 = example1()
    rows.append(
        _sweep_case(
            "fig7 exact L4->L1",
            lambda engine, mlp: exact_sweep_delay(
                fig7, "L4", "L1", 0.0, 140.0, mlp=mlp, engine=engine
            ),
        )
    )
    rows.append(
        _sweep_case(
            "fig7 grid L4->L1",
            lambda engine, mlp: sweep_delay(
                fig7, "L4", "L1", GRID, mlp=mlp, engine=engine
            ),
        )
    )
    for n in SIZES:
        circuit = random_multiloop_circuit(n, n_extra_arcs=n // 2, k=2, seed=n)
        arc = min(circuit.arcs, key=lambda a: (a.src, a.dst))
        grid = [arc.delay + 2.0 * i for i in range(5 if QUICK else 9)]
        rows.append(
            _sweep_case(
                f"scaling n={n} {arc.src}->{arc.dst}",
                lambda engine, mlp, c=circuit, a=arc, g=grid: sweep_delay(
                    c, a.src, a.dst, g, mlp=mlp, engine=engine
                ),
            )
        )
    return rows


def test_warm_start_halves_pivots(benchmark, emit):
    rows = benchmark.pedantic(run_warmstart, rounds=1, iterations=1)

    total_cold = sum(r["cold pivots"] for r in rows)
    total_warm = sum(r["warm pivots"] for r in rows)
    assert total_warm > 0
    # The acceptance bar: warm chains spend at least 2x fewer pivots in
    # total across the Fig. 7 sweeps and the scaling suite.
    assert total_cold >= 2 * total_warm
    # The Fig. 7 chains must actually warm-start; some random scaling
    # circuits legitimately reject every basis (their optimum moves to a
    # structurally different vertex between grid points).
    assert all(r["hits"] > 0 for r in rows if r["case"].startswith("fig7"))

    rows.append(
        {
            "case": "TOTAL",
            "cold pivots": total_cold,
            "warm pivots": total_warm,
            "hits": sum(r["hits"] for r in rows),
            "saved": sum(r["saved"] for r in rows),
            "ratio": round(total_cold / total_warm, 2),
        }
    )
    emit(
        "warmstart",
        format_comparison(
            rows,
            ["case", "cold pivots", "warm pivots", "ratio", "hits", "saved"],
            "Warm-started revised simplex: identical Tc, fewer pivots"
            + (" (quick grid)" if QUICK else ""),
        ),
    )
