"""Ablation benches for the extensions DESIGN.md calls out.

Not paper figures -- these quantify the design choices added on top of
the paper's minimal constraint set:

* exact adaptive sweep vs. grid sweep (solve counts and agreement);
* the cost-of-robustness curve Tc*(skew bound);
* the slack-vs-period tuning curve.
"""

import pytest

from repro.clocking.skew import SkewBound
from repro.core.constraints import ConstraintOptions
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.parametric import exact_sweep, sweep_delay
from repro.core.reporting import format_comparison
from repro.core.tuning import maximize_slack
from repro.designs.example1 import example1

FAST = MLPOptions(verify=False)


def test_exact_sweep_vs_grid(benchmark, emit):
    solves = {"n": 0}

    def evaluate(x: float) -> float:
        solves["n"] += 1
        return minimize_cycle_time(
            example1().with_arc_delay("L4", "L1", x), mlp=FAST
        ).period

    exact = benchmark(exact_sweep, evaluate, 0.0, 140.0)
    exact_solves = solves["n"]

    grid = sweep_delay(
        example1(), "L4", "L1", grid=[float(x) for x in range(0, 141, 5)]
    )
    assert exact.breakpoints == pytest.approx([20.0, 100.0], abs=1e-4)
    assert grid.breakpoints == pytest.approx([20.0, 100.0], abs=5.0)
    for x in (0.0, 40.0, 80.0, 120.0):
        assert exact.period_at(x) == pytest.approx(grid.period_at(x), abs=1e-6)

    emit(
        "exact_sweep_ablation",
        format_comparison(
            [
                {
                    "method": "adaptive exact",
                    "LP solves (per run)": exact_solves,
                    "breakpoint error": "~1e-5",
                },
                {
                    "method": "29-point grid",
                    "LP solves (per run)": 29,
                    "breakpoint error": "grid step / 2",
                },
            ],
            ["method", "LP solves (per run)", "breakpoint error"],
            "Fig. 7 reconstruction: adaptive vs grid",
        ),
    )


def test_skew_cost_curve(benchmark, emit):
    bounds = [0.0, 1.0, 2.0, 3.0, 5.0, 8.0]

    def run():
        rows = []
        for s in bounds:
            g = example1(80.0)
            options = ConstraintOptions(
                skew={p: SkewBound(s, s) for p in g.phase_names}
            )
            rows.append(
                {"skew +/- (ns)": s,
                 "Tc": minimize_cycle_time(g, options, FAST).period}
            )
        return rows

    rows = benchmark(run)
    periods = [r["Tc"] for r in rows]
    # Robustness is monotone in price and never below the nominal optimum.
    assert periods[0] == pytest.approx(110.0)
    assert all(b >= a - 1e-9 for a, b in zip(periods, periods[1:]))
    emit(
        "skew_cost",
        format_comparison(
            rows,
            ["skew +/- (ns)", "Tc"],
            "Cost of worst-case skew robustness (example 1, Delta_41 = 80)",
        ),
    )


def test_tuning_curve(benchmark, emit):
    periods = [110.0, 115.0, 120.0, 130.0, 150.0]

    def run():
        return [
            {"Tc": p, "best uniform slack": maximize_slack(example1(80.0), p).slack}
            for p in periods
        ]

    rows = benchmark(run)
    slacks = [r["best uniform slack"] for r in rows]
    assert all(b >= a - 1e-9 for a, b in zip(slacks, slacks[1:]))
    assert slacks[0] >= 0.0  # the optimum period is (just) schedulable
    emit(
        "tuning_curve",
        format_comparison(
            rows,
            ["Tc", "best uniform slack"],
            "Clock tuning: achievable setup margin vs period (example 1)",
        ),
    )
