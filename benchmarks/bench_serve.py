"""Service-layer benchmark: latency percentiles, coalescing, store reuse.

Runs the real HTTP server (``repro.serve.http``) against the canonical
request mix (``examples/loadgen_mix.json``) in four passes and asserts
the serve layer's core claims:

1. **cold**    -- empty store; every distinct request executes once.
2. **warm**    -- identical burst; everything is a memory hit, nothing
   executes, and the latency distribution collapses.
3. **restart** -- a *new* service process-state over the same SQLite
   store; results come from the store with **zero LP solves**.
4. **burst**   -- many concurrent copies of one uncached request;
   coalescing executes it exactly once.

The emitted report carries client-side p50/p95/p99 latency per pass plus
the server-side counter deltas (executed / coalesced / memory / store),
as both a table and machine-readable JSON
(``benchmarks/out/serve_latency.json`` -- the CI smoke artifact).

Set ``REPRO_BENCH_QUICK=1`` for a reduced request budget.
"""

import json
import os
import pathlib
import tempfile
import threading

from repro.core.reporting import format_comparison
from repro.serve import AnalysisService, ResultStore, load_mix, run_in_thread, run_load

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
REQUESTS = 24 if QUICK else 96
CONCURRENCY = 4
BURST = 8 if QUICK else 16

MIX_PATH = pathlib.Path(__file__).parent.parent / "examples" / "loadgen_mix.json"
OUT_JSON = pathlib.Path(__file__).parent / "out" / "serve_latency.json"


def _pass_row(name, report):
    d = report.to_dict()
    return {
        "pass": name,
        "reqs": d["requests"],
        "errs": d["errors"],
        "p50 ms": d["latency_p50_ms"],
        "p95 ms": d["latency_p95_ms"],
        "p99 ms": d["latency_p99_ms"],
        "exec": int(d["server_executed"]),
        "coal": int(d["server_coalesced"]),
        "mem": int(d["server_memory_hits"]),
        "store": int(d["server_store_hits"]),
        "lp": int(d["server_lp_solves"]),
    }


def run_serve_benchmark():
    mix = load_mix(str(MIX_PATH))
    tmp = tempfile.mkdtemp(prefix="bench_serve_")
    store_path = os.path.join(tmp, "results.sqlite")
    rows = []

    # Pass 1 + 2: cold then warm against one server instance.
    store = ResultStore(store_path)
    handle = run_in_thread(AnalysisService(store=store, workers=CONCURRENCY))
    try:
        cold = run_load(
            handle.url, mix=mix, requests=REQUESTS,
            concurrency=CONCURRENCY, seed=7,
        )
        warm = run_load(
            handle.url, mix=mix, requests=REQUESTS,
            concurrency=CONCURRENCY, seed=7,
        )
    finally:
        handle.stop()
    rows.append(_pass_row("cold", cold))
    rows.append(_pass_row("warm", warm))

    # Pass 3: a fresh service over the same store -- restart semantics.
    store = ResultStore(store_path)
    handle = run_in_thread(AnalysisService(store=store, workers=CONCURRENCY))
    try:
        restart = run_load(
            handle.url, mix=mix, requests=REQUESTS,
            concurrency=CONCURRENCY, seed=7,
        )
    finally:
        handle.stop()
    rows.append(_pass_row("restart", restart))

    # Pass 4: concurrent identical uncached requests -- coalescing.
    handle = run_in_thread(AnalysisService(store=None, workers=CONCURRENCY))
    try:
        burst_mix = [
            {"weight": 1, "request": {"kind": "minimize", "design": "gaas"}}
        ]
        burst = _concurrent_burst(handle.url, burst_mix[0]["request"], BURST)
    finally:
        handle.stop()
    rows.append(_pass_row("burst", burst))
    return rows


def _concurrent_burst(url, request, copies):
    """POST ``copies`` identical jobs truly concurrently (no draw jitter)."""
    from repro.serve.loadgen import LoadgenReport, _Client, _split_url, parse_metrics_text
    import time as _time

    host, port = _split_url(url)
    probe = _Client(host, port, 60.0)
    report = LoadgenReport()
    _, before = probe.request("GET", "/metrics")
    report.counters_before = parse_metrics_text(str(before))
    lock = threading.Lock()
    barrier = threading.Barrier(copies)

    def _one():
        client = _Client(host, port, 60.0)
        try:
            barrier.wait(timeout=30)
            start = _time.perf_counter()
            status, payload = client.request("POST", "/v1/jobs?wait=1", request)
            elapsed = _time.perf_counter() - start
            ok = status == 200 and payload.get("status") == "done"
            with lock:
                report.requests += 1
                report.latencies.append(elapsed)
                tag = payload.get("status", f"http_{status}")
                report.statuses[tag] = report.statuses.get(tag, 0) + 1
                if not ok:
                    report.errors += 1
        finally:
            client.close()

    started = _time.perf_counter()
    threads = [threading.Thread(target=_one, daemon=True) for _ in range(copies)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    report.wall_seconds = _time.perf_counter() - started
    _, after = probe.request("GET", "/metrics")
    report.counters_after = parse_metrics_text(str(after))
    probe.close()
    return report


def test_serve_latency_and_reuse(benchmark, emit):
    rows = benchmark.pedantic(run_serve_benchmark, rounds=1, iterations=1)
    by_pass = {r["pass"]: r for r in rows}

    for row in rows:
        assert row["errs"] == 0, f"{row['pass']} pass had errors: {row}"

    cold, warm, restart, burst = (
        by_pass["cold"], by_pass["warm"], by_pass["restart"], by_pass["burst"]
    )
    # Cold executes each distinct mix entry exactly once (7 in the mix).
    assert cold["exec"] >= 1
    assert cold["lp"] > 0
    # Warm repeats are pure memory hits: no execution, no LP work.
    assert warm["exec"] == 0 and warm["lp"] == 0
    assert warm["mem"] == warm["reqs"]
    # A restarted service answers from the persistent store without
    # solving any LP (the acceptance criterion for the result store).
    assert restart["lp"] == 0
    assert restart["exec"] == 0
    assert restart["store"] >= 1
    # Concurrent identical requests coalesce onto one execution.
    assert burst["exec"] == 1
    assert burst["coal"] == burst["reqs"] - 1

    OUT_JSON.parent.mkdir(exist_ok=True)
    OUT_JSON.write_text(
        json.dumps(
            {
                "requests_per_pass": REQUESTS,
                "concurrency": CONCURRENCY,
                "quick": QUICK,
                "passes": rows,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    emit(
        "serve_latency",
        format_comparison(
            rows,
            ["pass", "reqs", "errs", "p50 ms", "p95 ms", "p99 ms",
             "exec", "coal", "mem", "store", "lp"],
            "Analysis service: latency percentiles and result reuse"
            + (" (quick)" if QUICK else ""),
        ),
    )
