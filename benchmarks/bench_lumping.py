"""Section IV's lumping claim: bus-width independence of the LP size.

"By lumping latches corresponding to vector signals with similar timing
(e.g., 32-bit data buses), the number l can be reasonably small even for
large circuits."  This benchmark sweeps the bus width of a two-register
loop, lumps it, and shows the LP size and solve time staying flat while
the unlumped problem grows linearly -- with identical optima throughout.
"""

import time

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.lump import lump_parallel_latches
from repro.core.constraints import build_program
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.reporting import format_comparison

FAST = MLPOptions(verify=False)


def bus_loop(width: int):
    b = CircuitBuilder(["phi1", "phi2"])
    for i in range(width):
        b.latch(f"A{i}", phase="phi1", setup=2, delay=3)
        b.latch(f"B{i}", phase="phi2", setup=2, delay=3)
        b.path(f"A{i}", f"B{i}", 24)
        b.path(f"B{i}", f"A{i}", 36)
    return b.build()


def run_sweep():
    rows = []
    for width in (1, 8, 32, 64):
        full = bus_loop(width)
        reduced, _ = lump_parallel_latches(full)

        t0 = time.perf_counter()
        tc_full = minimize_cycle_time(full, mlp=FAST).period
        t_full = time.perf_counter() - t0
        t0 = time.perf_counter()
        tc_red = minimize_cycle_time(reduced, mlp=FAST).period
        t_red = time.perf_counter() - t0

        rows.append(
            {
                "bus width": width,
                "l (full)": full.l,
                "l (lumped)": reduced.l,
                "rows (full)": build_program(full).explicit_constraint_count,
                "rows (lumped)": build_program(reduced).explicit_constraint_count,
                "Tc full": tc_full,
                "Tc lumped": tc_red,
                "ms full": round(t_full * 1000, 1),
                "ms lumped": round(t_red * 1000, 1),
            }
        )
    return rows


def test_lumping_keeps_lp_size_flat(benchmark, emit):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    for row in rows:
        assert row["l (lumped)"] == 2
        assert row["Tc full"] == pytest.approx(row["Tc lumped"])
    # Full problem grows linearly with the bus; lumped stays constant.
    assert rows[-1]["rows (full)"] > 16 * rows[0]["rows (full)"]
    assert rows[-1]["rows (lumped)"] == rows[0]["rows (lumped)"]

    emit(
        "lumping",
        format_comparison(
            rows,
            [
                "bus width",
                "l (full)",
                "l (lumped)",
                "rows (full)",
                "rows (lumped)",
                "Tc full",
                "Tc lumped",
                "ms full",
                "ms lumped",
            ],
            "Vector-signal lumping (Section IV): LP size vs bus width",
        ),
    )
