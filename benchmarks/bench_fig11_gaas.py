"""Figs. 10-11: the GaAs MIPS datapath case study.

Regenerates the optimal clock schedule of the reconstructed 250 MHz GaAs
datapath model and asserts every published claim:

* 18 synchronizers, 15 of them latches (each a 32-bit bus);
* 91 timing constraints;
* optimal cycle time 4.4 ns, 10% above the 4 ns target;
* phi3 (register-file precharge) totally overlapped by phi1, legal since
  K13 = K31 = 0;
* runtime "hardly noticeable ... on the order of a few seconds" on a
  DECStation 3100 -- sub-second on anything modern.
"""

import pytest

from repro.core.analysis import analyze
from repro.core.constraints import build_program
from repro.core.mlp import minimize_cycle_time
from repro.designs.gaas import GAAS_OPTIMAL_PERIOD, GAAS_TARGET_PERIOD, gaas_datapath
from repro.render.ascii_art import clock_diagram, schedule_table


def test_fig11_gaas_schedule(benchmark, emit):
    circuit = gaas_datapath()
    result = benchmark(minimize_cycle_time, circuit)

    assert circuit.l == 18
    assert len(circuit.latches) == 15
    assert len(circuit.flipflops) == 3
    assert build_program(circuit).paper_constraint_count == 91

    assert result.period == pytest.approx(GAAS_OPTIMAL_PERIOD)
    assert result.period / GAAS_TARGET_PERIOD == pytest.approx(1.10)

    schedule = result.schedule
    p1, p3 = schedule["phi1"], schedule["phi3"]
    assert p3.start >= p1.start - 1e-9
    assert p3.end <= p1.end + 1e-9
    k = circuit.k_matrix()
    assert k[0][2] == 0 and k[2][0] == 0
    assert analyze(circuit, schedule).feasible

    emit(
        "fig11_gaas",
        "\n".join(
            [
                f"constraints (paper convention): "
                f"{build_program(circuit).paper_constraint_count} (paper: 91)",
                f"optimal Tc: {result.period:g} ns "
                f"(paper: 4.4 ns, 10% above the 4 ns target)",
                "",
                schedule_table(schedule),
                clock_diagram(schedule),
                "",
                f"phi3 [{p3.start:g}, {p3.end:g}] inside "
                f"phi1 [{p1.start:g}, {p1.end:g}] -- totally overlapped "
                f"(paper's Fig. 11 observation); K13 = K31 = 0",
            ]
        ),
    )
