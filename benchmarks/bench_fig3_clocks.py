"""Fig. 3: the reference two-, three- and four-phase clocks.

Regenerates the three clock schedules, asserts they satisfy the minimal
clock constraints C1-C4 (including two-phase nonoverlap), and emits their
waveform diagrams.
"""

from repro.clocking.library import fig3_clocks
from repro.render.ascii_art import clock_diagram, schedule_table


def test_fig3_reference_clocks(benchmark, emit):
    clocks = benchmark(fig3_clocks, 100.0)

    assert set(clocks) == {"two-phase", "three-phase", "four-phase"}
    two = clocks["two-phase"]
    # For k = 2 the clock constraints force nonoverlap (paper, Section
    # III-A): validate against the full two-phase K matrix.
    two.validate(k_matrix=[[0, 1], [1, 0]])
    clocks["three-phase"].validate()
    clocks["four-phase"].validate()

    sections = []
    for name, schedule in clocks.items():
        sections.append(f"--- {name} ---")
        sections.append(schedule_table(schedule))
        sections.append(clock_diagram(schedule, n_cycles=2))
        sections.append("")
    emit("fig3_clocks", "\n".join(sections))
