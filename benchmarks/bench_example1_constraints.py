"""Section V constraint listing for example 1 (Fig. 5).

The paper prints the complete constraint set of example 1; this benchmark
regenerates it from the circuit description, asserts the structure (family
sizes, topological coefficients, the exact rows quoted in the paper) and
emits the generated system.
"""

from repro.core.constraints import build_program
from repro.designs.example1 import example1


def test_example1_constraint_generation(benchmark, emit):
    smo = benchmark(build_program, example1(80.0))

    # Families exactly as in the paper's listing.
    assert len(smo.family("C1")) == 4
    assert len(smo.family("C2")) == 1
    assert len(smo.family("C3")) == 2
    assert len(smo.family("L1")) == 4
    assert len(smo.family("L2R")) == 4
    smo.assert_topological()

    # Spot-check two rows against the published text:
    #   D1 = max(0, D4 + 10 + D41 + s2 - s1 - Tc)   [L2R, relaxed]
    #   s2 >= s1 + T1                                [C3]
    l2r = smo.program.constraint("L2R[L4->L1]")
    assert l2r.rhs == 10 + 80  # Delta_DQ4 + Delta_41
    c3 = smo.program.constraint("C3[phi2/phi1]")
    assert c3.rhs == 0

    emit(
        "example1_constraints",
        f"paper-convention constraint count: {smo.paper_constraint_count}\n"
        f"explicit LP rows: {smo.explicit_constraint_count}\n\n"
        + str(smo.program),
    )
