"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it
asserts the reproduced values and *emits* the table (to stdout and to
``benchmarks/out/<name>.txt``) so the series can be compared against the
paper side by side.  EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def emit():
    """emit(name, text): persist a reproduced table/series and echo it."""

    def _emit(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text.rstrip() + "\n", encoding="utf-8")
        print(f"\n[{name}]\n{text}")

    return _emit
