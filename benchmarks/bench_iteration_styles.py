"""Ablation: Jacobi vs Gauss-Seidel vs event-driven departure updates.

Section IV: "A more efficient Gauss-Seidel-style iteration is obviously
possible.  In fact, an event-driven update mechanism ... can be easily
implemented.  With such an enhancement, the cost of the iterative steps is
greatly reduced for large circuits."  This ablation checks all three
update styles produce identical departures and compares their work counts
on a large random circuit.
"""

import pytest

from repro.circuit.generate import random_multiloop_circuit
from repro.core.constraints import build_maxplus_system
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.reporting import format_comparison
from repro.maxplus.fixpoint import least_fixpoint


def run_styles():
    circuit = random_multiloop_circuit(60, n_extra_arcs=40, k=3, seed=9)
    schedule = minimize_cycle_time(circuit, mlp=MLPOptions(verify=False)).schedule
    system = build_maxplus_system(circuit, schedule)
    rows = []
    values = {}
    for method in ("jacobi", "gauss-seidel", "event"):
        fix = least_fixpoint(system, method=method)
        values[method] = fix.values
        unit = "node updates" if method == "event" else "full sweeps"
        rows.append({"method": method, "work": fix.iterations, "unit": unit})
    return rows, values


def test_iteration_styles_agree(benchmark, emit):
    rows, values = benchmark(run_styles)

    ref = values["jacobi"]
    for method, vals in values.items():
        assert vals == pytest.approx(ref, abs=1e-9), method

    # Gauss-Seidel needs no more sweeps than Jacobi.
    sweeps = {r["method"]: r["work"] for r in rows}
    assert sweeps["gauss-seidel"] <= sweeps["jacobi"]

    emit(
        "iteration_styles",
        format_comparison(
            rows,
            ["method", "work", "unit"],
            "Departure-update styles on a 60-latch circuit "
            "(identical fixpoints)",
        ),
    )
