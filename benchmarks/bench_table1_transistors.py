"""Table I: transistor counts for the major blocks of the GaAs datapath.

Static design data carried on the model; the benchmark reproduces the
table, asserts every entry and the published total of 30,148, and checks
the paper's "majority in the register file" remark.
"""

import pytest

from repro.core.reporting import format_comparison
from repro.designs.gaas import TRANSISTOR_COUNTS, TRANSISTOR_TOTAL


def build_table():
    rows = [
        {"block": name, "transistors": count}
        for name, count in TRANSISTOR_COUNTS.items()
    ]
    rows.append({"block": "Total", "transistors": sum(TRANSISTOR_COUNTS.values())})
    return rows


def test_table1_transistor_counts(benchmark, emit):
    rows = benchmark(build_table)

    published = {
        "Register File (RF)": 16085,
        "Arithmetic/Logic Unit (ALU)": 3419,
        "Shifter": 1848,
        "Integer Multiply/Divide (IMD)": 6874,
        "Load Aligner": 1922,
    }
    for name, count in published.items():
        assert TRANSISTOR_COUNTS[name] == count
    assert rows[-1]["transistors"] == TRANSISTOR_TOTAL == 30148
    assert TRANSISTOR_COUNTS["Register File (RF)"] > TRANSISTOR_TOTAL / 2

    emit(
        "table1_transistors",
        format_comparison(rows, ["block", "transistors"], "Table I"),
    )
