"""Figs. 8-9: example 2 -- MLP versus NRIP on a multi-loop circuit.

The paper's headline comparison: "the cycle time found by the NRIP
algorithm is significantly higher (35%) than the optimal cycle time".
Regenerates both schedules, asserts the 1.35 ratio, and emits the
schedules side by side (the content of Fig. 9).
"""

import pytest

from repro.baselines.nrip import nrip_minimize
from repro.core.analysis import analyze
from repro.core.mlp import minimize_cycle_time
from repro.designs.example2 import (
    EXAMPLE2_NRIP_PERIOD,
    EXAMPLE2_OPTIMAL_PERIOD,
    example2,
)
from repro.render.ascii_art import clock_diagram, schedule_table


def solve_both():
    circuit = example2()
    return minimize_cycle_time(circuit), nrip_minimize(circuit)


def test_fig9_mlp_vs_nrip(benchmark, emit):
    mlp, nrip = benchmark(solve_both)

    assert mlp.period == pytest.approx(EXAMPLE2_OPTIMAL_PERIOD)
    assert nrip.period == pytest.approx(EXAMPLE2_NRIP_PERIOD)
    ratio = nrip.period / mlp.period
    assert ratio == pytest.approx(1.35)

    circuit = example2()
    assert analyze(circuit, mlp.schedule).feasible
    assert analyze(circuit, nrip.schedule).feasible

    text = "\n".join(
        [
            f"MLP optimal cycle time : {mlp.period:g} ns",
            schedule_table(mlp.schedule),
            clock_diagram(mlp.schedule),
            "",
            f"NRIP cycle time        : {nrip.period:g} ns "
            f"({(ratio - 1) * 100:.0f}% above optimal; paper: 35%)",
            schedule_table(nrip.schedule),
            clock_diagram(nrip.schedule),
        ]
    )
    emit("fig9_example2", text)
