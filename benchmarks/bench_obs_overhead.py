"""Observability overhead budgets on the Fig. 7 sweep workload.

The repro.obs instrumentation (spans *and* metrics) lives permanently
inside the hot paths: every LP solve opens a span and records a latency
observation, every pivot and slide sweep hits an ``is_enabled`` guard.
The deal that makes this acceptable is that the *disabled* path (the
default) must cost less than 2% of the untraced ``bench_fig7_sweep``
workload, and fully *enabled* metrics must stay under 5%.

A direct A/B against uninstrumented code is impossible (the hooks are the
code now), so the budgets are asserted from above: run the workload
instrumented once to count exactly how many spans/events/metric updates
the instrumentation produces, microbenchmark the per-call cost of each
site kind (no-op span, ``is_enabled`` check, null-metric update, enabled
counter inc, enabled histogram observe), and charge every counted site
that worst-case price.  The resulting estimate deliberately over-counts
-- hoisted guards (one check per solve, not per pivot) are charged per
event anyway -- and must still land under budget against the measured
uninstrumented wall time.

Set ``REPRO_BENCH_QUICK=1`` (the CI smoke job does) for a reduced grid.
"""

import os
import time

from repro.core.mlp import MLPOptions
from repro.core.parametric import sweep_delay
from repro.designs import example1
from repro.obs import metrics, trace

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
GRID = [float(x) for x in (range(0, 145, 15) if QUICK else range(0, 145, 5))]
FAST = MLPOptions(verify=False)

#: The contract: tracing (or metrics) off costs < 2% on bench_fig7_sweep.
OVERHEAD_BUDGET = 0.02
#: Metrics fully on must stay under 5% of the same workload.
ENABLED_BUDGET = 0.05


def _workload():
    return sweep_delay(example1(), "L4", "L1", grid=GRID, mlp=FAST)


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _per_call_null_span(n: int = 200_000) -> float:
    span = trace.span  # the module-level fast path instrumented code uses
    start = time.perf_counter()
    for _ in range(n):
        with span("bench"):
            pass
    return (time.perf_counter() - start) / n


def _per_call_enabled_check(n: int = 200_000) -> float:
    check = trace.is_enabled
    start = time.perf_counter()
    for _ in range(n):
        check()
    return (time.perf_counter() - start) / n


def test_obs_disabled_overhead(emit):
    trace.reset(enabled=False)
    _workload()  # warm caches/JIT-ish effects out of the measurement
    t_off = _best_of(_workload)

    # Count every instrumentation site the workload actually executes.
    tracer = trace.enable()
    with trace.span("bench_root"):
        _workload()
    spans = sum(1 for root in tracer.roots for _ in root.walk()) - 1
    events = sum(
        len(s.events) for root in tracer.roots for s in root.walk()
    )
    trace.reset(enabled=False)

    c_span = _per_call_null_span()
    c_check = _per_call_enabled_check()
    # Each span site pays one NullSpan open/close plus (generously) one
    # guard; each event site pays one guard.  Attribute sets on NullSpan
    # are no-ops cheaper than c_check and are covered by the slack.
    estimate = spans * (c_span + c_check) + events * c_check
    ratio = estimate / t_off

    lines = [
        f"untraced workload (best of 3): {1000.0 * t_off:.2f} ms",
        f"instrumentation sites: {spans} spans, {events} events",
        f"disabled cost/site: span {1e9 * c_span:.1f} ns, "
        f"guard {1e9 * c_check:.1f} ns",
        f"estimated disabled overhead: {1e6 * estimate:.1f} us "
        f"({100.0 * ratio:.4f}% of workload, budget "
        f"{100.0 * OVERHEAD_BUDGET:.0f}%)",
    ]
    emit("obs_overhead", "\n".join(lines))

    assert ratio < OVERHEAD_BUDGET, (
        f"disabled tracing overhead {100.0 * ratio:.3f}% exceeds the "
        f"{100.0 * OVERHEAD_BUDGET:.0f}% budget on bench_fig7_sweep"
    )


def _count_metric_updates() -> int:
    """Run the workload with metrics on; count every recorded update.

    Counter values are increment counts (every site incs by 1) and
    histogram counts are observation counts, so summing them counts the
    number of instrumentation calls the workload actually executes.
    """
    metrics.reset(enabled=True)
    try:
        _workload()
        updates = 0
        for metric in metrics.get_registry().collect():
            if metric.kind == "counter":
                updates += int(metric.value)
            elif metric.kind == "histogram":
                updates += int(metric.count)
            else:  # gauge: charge one update per set
                updates += 1
        return updates
    finally:
        metrics.reset(enabled=False)


def _per_call_disabled_metric(n: int = 200_000) -> float:
    """Disabled-path cost of one module-level metrics update call."""
    observe = metrics.observe  # the fast path instrumented code uses
    start = time.perf_counter()
    for _ in range(n):
        observe("bench_noop_seconds", 0.001)
    return (time.perf_counter() - start) / n


def _per_call_enabled_updates(n: int = 100_000) -> tuple[float, float]:
    """Enabled-path cost of (counter inc, histogram observe), per call."""
    registry = metrics.MetricsRegistry(enabled=True)
    counter = registry.counter("bench_total", site="a")
    start = time.perf_counter()
    for _ in range(n):
        counter.inc()
    c_inc = (time.perf_counter() - start) / n
    histogram = registry.histogram("bench_seconds", site="a")
    start = time.perf_counter()
    for _ in range(n):
        histogram.observe(0.001)
    c_obs = (time.perf_counter() - start) / n
    return c_inc, c_obs


def test_metrics_disabled_overhead(emit):
    """Metrics off must cost < 2%: guards + null-metric updates."""
    metrics.reset(enabled=False)
    trace.reset(enabled=False)
    _workload()
    t_off = _best_of(_workload)

    sites = _count_metric_updates()
    c_update = _per_call_disabled_metric()
    c_check = _per_call_enabled_check()
    # Each update site pays (generously) one is_enabled guard plus one
    # disabled module-level call, even though guarded blocks skip the
    # call entirely when disabled.
    estimate = sites * (c_update + c_check)
    ratio = estimate / t_off

    lines = [
        f"unmetered workload (best of 3): {1000.0 * t_off:.2f} ms",
        f"metric update sites: {sites}",
        f"disabled cost/site: update {1e9 * c_update:.1f} ns, "
        f"guard {1e9 * c_check:.1f} ns",
        f"estimated disabled overhead: {1e6 * estimate:.1f} us "
        f"({100.0 * ratio:.4f}% of workload, budget "
        f"{100.0 * OVERHEAD_BUDGET:.0f}%)",
    ]
    emit("metrics_disabled_overhead", "\n".join(lines))

    assert ratio < OVERHEAD_BUDGET, (
        f"disabled metrics overhead {100.0 * ratio:.3f}% exceeds the "
        f"{100.0 * OVERHEAD_BUDGET:.0f}% budget on bench_fig7_sweep"
    )


def test_metrics_enabled_overhead(emit):
    """Metrics fully on must cost < 5%: live counter/histogram updates."""
    metrics.reset(enabled=False)
    trace.reset(enabled=False)
    _workload()
    t_off = _best_of(_workload)

    sites = _count_metric_updates()
    c_inc, c_obs = _per_call_enabled_updates()
    c_check = _per_call_enabled_check()
    # Worst case: every update is a histogram observe (bisect + two float
    # adds -- strictly costlier than a counter inc) behind one guard and
    # one labeled instrument lookup, approximated by a second observe.
    c_site = max(c_inc, c_obs) * 2.0 + c_check
    estimate = sites * c_site
    ratio = estimate / t_off

    lines = [
        f"unmetered workload (best of 3): {1000.0 * t_off:.2f} ms",
        f"metric update sites: {sites}",
        f"enabled cost/call: inc {1e9 * c_inc:.1f} ns, "
        f"observe {1e9 * c_obs:.1f} ns",
        f"estimated enabled overhead: {1e6 * estimate:.1f} us "
        f"({100.0 * ratio:.4f}% of workload, budget "
        f"{100.0 * ENABLED_BUDGET:.0f}%)",
    ]
    emit("metrics_enabled_overhead", "\n".join(lines))

    assert ratio < ENABLED_BUDGET, (
        f"enabled metrics overhead {100.0 * ratio:.3f}% exceeds the "
        f"{100.0 * ENABLED_BUDGET:.0f}% budget on bench_fig7_sweep"
    )
