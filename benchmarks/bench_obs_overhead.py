"""Disabled-tracing overhead budget on the Fig. 7 sweep workload.

The repro.obs instrumentation lives permanently inside the hot paths:
every LP solve opens a span, every pivot and slide sweep hits an
``is_enabled`` guard.  The deal that makes this acceptable is that the
*disabled* path (the default) must cost less than 2% of the untraced
``bench_fig7_sweep`` workload.

A direct A/B against uninstrumented code is impossible (the hooks are the
code now), so the budget is asserted from above: run the workload traced
once to count exactly how many spans and events the instrumentation
produces, microbenchmark the disabled cost of one no-op span and one
``is_enabled`` check, and charge every counted site that worst-case
price.  The resulting estimate deliberately over-counts -- hoisted guards
(one check per solve, not per pivot) are charged per event anyway -- and
must still land under 2% of the measured untraced wall time.

Set ``REPRO_BENCH_QUICK=1`` (the CI smoke job does) for a reduced grid.
"""

import os
import time

from repro.core.mlp import MLPOptions
from repro.core.parametric import sweep_delay
from repro.designs import example1
from repro.obs import trace

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
GRID = [float(x) for x in (range(0, 145, 15) if QUICK else range(0, 145, 5))]
FAST = MLPOptions(verify=False)

#: The contract: tracing off costs < 2% on bench_fig7_sweep's workload.
OVERHEAD_BUDGET = 0.02


def _workload():
    return sweep_delay(example1(), "L4", "L1", grid=GRID, mlp=FAST)


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _per_call_null_span(n: int = 200_000) -> float:
    span = trace.span  # the module-level fast path instrumented code uses
    start = time.perf_counter()
    for _ in range(n):
        with span("bench"):
            pass
    return (time.perf_counter() - start) / n


def _per_call_enabled_check(n: int = 200_000) -> float:
    check = trace.is_enabled
    start = time.perf_counter()
    for _ in range(n):
        check()
    return (time.perf_counter() - start) / n


def test_obs_disabled_overhead(emit):
    trace.reset(enabled=False)
    _workload()  # warm caches/JIT-ish effects out of the measurement
    t_off = _best_of(_workload)

    # Count every instrumentation site the workload actually executes.
    tracer = trace.enable()
    with trace.span("bench_root"):
        _workload()
    spans = sum(1 for root in tracer.roots for _ in root.walk()) - 1
    events = sum(
        len(s.events) for root in tracer.roots for s in root.walk()
    )
    trace.reset(enabled=False)

    c_span = _per_call_null_span()
    c_check = _per_call_enabled_check()
    # Each span site pays one NullSpan open/close plus (generously) one
    # guard; each event site pays one guard.  Attribute sets on NullSpan
    # are no-ops cheaper than c_check and are covered by the slack.
    estimate = spans * (c_span + c_check) + events * c_check
    ratio = estimate / t_off

    lines = [
        f"untraced workload (best of 3): {1000.0 * t_off:.2f} ms",
        f"instrumentation sites: {spans} spans, {events} events",
        f"disabled cost/site: span {1e9 * c_span:.1f} ns, "
        f"guard {1e9 * c_check:.1f} ns",
        f"estimated disabled overhead: {1e6 * estimate:.1f} us "
        f"({100.0 * ratio:.4f}% of workload, budget "
        f"{100.0 * OVERHEAD_BUDGET:.0f}%)",
    ]
    emit("obs_overhead", "\n".join(lines))

    assert ratio < OVERHEAD_BUDGET, (
        f"disabled tracing overhead {100.0 * ratio:.3f}% exceeds the "
        f"{100.0 * OVERHEAD_BUDGET:.0f}% budget on bench_fig7_sweep"
    )
