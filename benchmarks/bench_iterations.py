"""Section IV observation: the MLP slide terminates in 0-3 iterations.

"In the examples we have attempted, the update process usually terminated
in two to three iterations (in some cases no iterations were even
necessary)."  Regenerates the iteration counts across the paper's circuits
and a pool of random ones.
"""

from repro.circuit.generate import random_multiloop_circuit
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.reporting import format_comparison
from repro.designs import example1, example2, fig1_circuit, gaas_datapath


def circuits():
    pool = [
        ("example1 @80", example1(80.0)),
        ("example1 @120", example1(120.0)),
        ("example2", example2()),
        ("fig1", fig1_circuit()),
        ("gaas", gaas_datapath()),
    ]
    for seed in range(5):
        pool.append(
            (f"random#{seed}", random_multiloop_circuit(10, 5, k=2, seed=seed))
        )
    return pool


def run_all():
    rows = []
    for name, circuit in circuits():
        result = minimize_cycle_time(
            circuit, mlp=MLPOptions(iteration="jacobi", verify=False)
        )
        rows.append(
            {"circuit": name, "Tc": result.period,
             "slide sweeps": result.slide_sweeps}
        )
    return rows


def test_slide_iteration_counts(benchmark, emit):
    rows = benchmark(run_all)

    for row in rows:
        # "two to three iterations" with small constants of slop: the
        # Jacobi sweep count includes the final no-change sweep.
        assert row["slide sweeps"] <= 5, row

    emit(
        "slide_iterations",
        format_comparison(
            rows,
            ["circuit", "Tc", "slide sweeps"],
            "MLP steps 3-5: Jacobi sweeps until the max constraints hold "
            "(paper: 0-3)",
        ),
    )
