"""Appendix / Fig. 1: the 11-latch, four-phase circuit's constraint set.

The Appendix writes out the complete timing constraints of the Fig. 1
circuit "by inspection".  This benchmark regenerates them, asserts the
published K matrix, the nine phase-shift operators and the per-phase setup
grouping, and emits the generated system.
"""

from repro.core.constraints import build_program
from repro.core.mlp import minimize_cycle_time
from repro.designs.fig1 import fig1_circuit, fig1_k_matrix


def test_appendix_fig1_constraints(benchmark, emit):
    circuit = fig1_circuit()
    smo = benchmark(build_program, circuit)

    # The published K matrix (eq. 2 instance).
    assert circuit.k_matrix() == fig1_k_matrix()
    # Nine I/O phase pairs -> nine phase-shift operators (Appendix list).
    assert len(circuit.io_phase_pairs()) == 9
    # 11 setup rows grouped T1:{1,2,8} T2:{6,7,11} T3:{4,5,10} T4:{3,9}.
    assert len(smo.family("L1")) == 11
    # 19 propagation rows, one per combinational arc.
    assert len(smo.family("L2R")) == 19
    smo.assert_topological()

    result = minimize_cycle_time(circuit)

    k_text = "\n".join(
        "  " + " ".join(str(x) for x in row) for row in circuit.k_matrix()
    )
    emit(
        "appendix_fig1",
        "K matrix (matches the paper's Appendix):\n"
        + k_text
        + f"\n\noptimal Tc with uniform 20 ns blocks: {result.period:g} ns\n\n"
        + str(smo.program),
    )
