"""End-to-end scaling of the gate-level pipeline.

The paper assumes latch-to-latch delays are pre-extracted; this bench
times the whole replacement flow -- random gate netlist, min/max
combinational STA, timing-graph extraction, Algorithm MLP, and the
cycle-accurate simulation cross-check -- as the gate count grows.
"""

import time

from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.reporting import format_comparison
from repro.netlist.extract import extract_timing_graph
from repro.netlist.generate import random_gate_pipeline
from repro.sim import simulate

CASES = [(4, 10), (6, 25), (8, 50)]


def run_flow():
    rows = []
    for stages, gates in CASES:
        start = time.perf_counter()
        netlist, phases = random_gate_pipeline(stages, gates, seed=stages)
        graph = extract_timing_graph(netlist, phases)
        result = minimize_cycle_time(graph, mlp=MLPOptions(verify=False))
        sim = simulate(graph, result.schedule)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "stages": stages,
                "gates": stages * gates,
                "Tc (ns)": round(result.period, 4),
                "sim settles at": sim.settled_at,
                "sim clean": sim.feasible,
                "ms": round(elapsed * 1000, 1),
            }
        )
    return rows


def test_gate_level_flow_scales(benchmark, emit):
    rows = benchmark.pedantic(run_flow, rounds=1, iterations=1)
    for row in rows:
        assert row["sim clean"], row
        assert row["ms"] < 10_000
    emit(
        "gate_pipeline",
        format_comparison(
            rows,
            ["stages", "gates", "Tc (ns)", "sim settles at", "sim clean", "ms"],
            "Gate netlist -> STA -> MLP -> simulation, end to end",
        ),
    )
