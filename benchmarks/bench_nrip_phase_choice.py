"""Ablation: NRIP's dependence on the choice of initial phase.

The NRIP reconstruction (DESIGN.md section 5) takes the "initial" phase --
the phase whose latches are denied retardation -- as a parameter; the
paper's comparison corresponds to the circuit's last phase.  This ablation
quantifies how much the choice matters: every choice upper-bounds the MLP
optimum, and the spread across choices is the borrowing structure of the
circuit made visible.
"""

import pytest

from repro.baselines.nrip import nrip_minimize
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.reporting import format_comparison
from repro.designs import example1, example2

FAST = MLPOptions(verify=False)


def run_ablation():
    rows = []
    for name, circuit in [("example1 @80", example1(80.0)), ("example2", example2())]:
        opt = minimize_cycle_time(circuit, mlp=FAST).period
        row = {"circuit": name, "MLP": opt}
        for phase in circuit.phase_names:
            row[f"NRIP@{phase}"] = nrip_minimize(
                circuit, initial_phase=phase, mlp=FAST
            ).period
        rows.append(row)
    return rows


def test_nrip_initial_phase_ablation(benchmark, emit):
    rows = benchmark(run_ablation)

    for row in rows:
        for key, value in row.items():
            if key.startswith("NRIP@"):
                assert value >= row["MLP"] - 1e-9, (row["circuit"], key)
    # The published curves correspond to the last phase.
    assert rows[0]["NRIP@phi2"] == pytest.approx(120.0)
    assert rows[1]["NRIP@phi4"] == pytest.approx(405.0)

    columns = ["circuit", "MLP"] + [
        k for k in rows[1] if k.startswith("NRIP@")
    ]
    emit(
        "nrip_phase_choice",
        format_comparison(
            rows,
            [c for c in columns if any(c in r for r in rows)],
            "NRIP cycle time by initial-phase choice (MLP = optimum)",
        ),
    )
