"""Ablation: dense simplex vs revised simplex vs scipy vs cycle solver.

The paper's initial implementation used "a dense-matrix LP solver which
implements the standard simplex algorithm"; this ablation checks that the
choice of LP backend changes runtimes but never results.  Timing and
iteration counts come from the solver instrumentation itself
(``LPResult.solve_seconds`` / ``LPResult.iterations``, surfaced through
``OptimalClockResult.extra``) uniformly for all backends -- the scipy
path reports HiGHS's own ``nit`` counter, the cycle path its ratio-search
jump count -- rather than external stopwatches.

The backend list is driven from the registry
(:func:`repro.lp.backends.available_backends`), excluding ``+check``
variants (they solve twice by design).

``test_cycle_speedup_at_scale`` is the headline perf claim of the
graph-native backend (docs/CYCLE.md): on generated multi-loop designs the
parametric critical-cycle search beats the revised simplex by >=10x at
1024 latches while reproducing its optimum to 1e-9.  Those rows disable
the compact tie-break pass (``compact=False``) so the measured ``lp_solve``
stage is the pure minimum-Tc solve for both backends.

Set ``REPRO_BENCH_QUICK=1`` (the CI smoke job does) for a reduced grid:
the scale test then runs a 256-latch instance instead of 1024+ (the full
1024-latch revised-simplex solve alone takes ~10 minutes).
"""

import os

import pytest

from repro.circuit.generate import random_multiloop_circuit
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.reporting import format_comparison
from repro.designs import example1, example2, fig1_circuit, gaas_datapath
from repro.lp.backends import available_backends

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Every registered single-solve backend ("+check" variants solve twice).
BACKENDS = tuple(b for b in available_backends() if "+" not in b)

#: Backends whose iteration counter is a simplex pivot / HiGHS nit count.
#: The cycle backend reports ratio-search jumps instead, which can
#: legitimately be 1 on small designs.
PIVOT_BACKENDS = tuple(b for b in BACKENDS if b != "cycle")

CIRCUITS = [
    ("example1 @80", example1(80.0)),
    ("example2", example2()),
    ("fig1", fig1_circuit()),
    ("gaas", gaas_datapath()),
]

#: (latches, also run the revised simplex?) -- beyond 1024 the revised
#: simplex takes hours, so larger sizes are cycle-only scaling points.
SCALE_POINTS = [(256, True)] if QUICK else [(1024, True), (4096, False), (8192, False)]


def run_ablation():
    rows = []
    for name, circuit in CIRCUITS:
        row = {"circuit": name}
        for backend in BACKENDS:
            result = minimize_cycle_time(
                circuit, mlp=MLPOptions(backend=backend, verify=False)
            )
            row[f"Tc ({backend})"] = result.period
            row[f"lp ms ({backend})"] = round(
                result.extra["stages"]["lp_solve"] * 1000, 2
            )
            row[f"iters ({backend})"] = result.extra["lp_iterations"]
            if backend == "cycle":
                # The graph path must actually be taken (no LP fallback)
                # on every bundled paper design.
                assert result.extra["cycle"]["used"] is True
        rows.append(row)
    return rows


def run_scale():
    rows = []
    for n, with_revised in SCALE_POINTS:
        circuit = random_multiloop_circuit(n, n_extra_arcs=n // 2, k=2, seed=n)
        row = {"latches": n, "arcs": len(circuit.arcs)}
        for backend in ("cycle", "revised") if with_revised else ("cycle",):
            result = minimize_cycle_time(
                circuit,
                mlp=MLPOptions(backend=backend, verify=False, compact=False),
            )
            row[f"Tc ({backend})"] = result.period
            row[f"lp s ({backend})"] = round(
                result.extra["stages"]["lp_solve"], 4
            )
            row[f"iters ({backend})"] = result.extra["lp_iterations"]
            if backend == "cycle":
                assert result.extra["cycle"]["used"] is True
        if with_revised:
            row["speedup"] = round(row["lp s (revised)"] / row["lp s (cycle)"], 1)
        rows.append(row)
    return rows


def test_backends_agree(benchmark, emit):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    for row in rows:
        for backend in BACKENDS:
            assert row[f"Tc ({backend})"] == pytest.approx(
                row["Tc (simplex)"], abs=1e-6
            )
        # The cycle solver must match the LP optimum far tighter than the
        # generic cross-backend tolerance (its certification contract).
        assert row["Tc (cycle)"] == pytest.approx(
            row["Tc (simplex)"], abs=1e-9
        )
        for backend in PIVOT_BACKENDS:
            assert row[f"iters ({backend})"] > 0

    emit(
        "solver_ablation",
        format_comparison(
            rows,
            ["circuit"]
            + [f"Tc ({b})" for b in BACKENDS]
            + [f"lp ms ({b})" for b in BACKENDS]
            + [f"iters ({b})" for b in BACKENDS],
            "LP backend ablation: identical optima, different speed",
        ),
    )


def test_cycle_speedup_at_scale(benchmark, emit):
    rows = benchmark.pedantic(run_scale, rounds=1, iterations=1)

    for row in rows:
        if "Tc (revised)" in row:
            scale = max(1.0, abs(row["Tc (revised)"]))
            assert row["Tc (cycle)"] == pytest.approx(
                row["Tc (revised)"], abs=1e-9 * scale
            )
            # The headline claim: >=10x over the revised simplex (measured
            # ~100x at 256 latches and ~10000x at 1024).
            assert row["speedup"] >= 10.0

    emit(
        "cycle_scaling",
        format_comparison(
            rows,
            [
                "latches",
                "arcs",
                "Tc (cycle)",
                "Tc (revised)",
                "lp s (cycle)",
                "lp s (revised)",
                "iters (cycle)",
                "iters (revised)",
                "speedup",
            ],
            "Graph-native cycle solver vs revised simplex at scale",
        ),
    )
