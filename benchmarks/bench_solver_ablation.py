"""Ablation: dense simplex vs revised simplex vs scipy's HiGHS.

The paper's initial implementation used "a dense-matrix LP solver which
implements the standard simplex algorithm"; this ablation checks that the
choice of LP backend changes runtimes but never results.  Timing and
iteration counts come from the solver instrumentation itself
(``LPResult.solve_seconds`` / ``LPResult.iterations``, surfaced through
``OptimalClockResult.extra``) uniformly for all three backends -- the
scipy path reports HiGHS's own ``nit`` counter -- rather than external
stopwatches.
"""

import pytest

from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.reporting import format_comparison
from repro.designs import example1, example2, fig1_circuit, gaas_datapath
from repro.lp.backends import available_backends

pytestmark = pytest.mark.skipif(
    "scipy" not in available_backends(), reason="scipy backend unavailable"
)

BACKENDS = ("simplex", "revised", "scipy")

CIRCUITS = [
    ("example1 @80", example1(80.0)),
    ("example2", example2()),
    ("fig1", fig1_circuit()),
    ("gaas", gaas_datapath()),
]


def run_ablation():
    rows = []
    for name, circuit in CIRCUITS:
        row = {"circuit": name}
        for backend in BACKENDS:
            result = minimize_cycle_time(
                circuit, mlp=MLPOptions(backend=backend, verify=False)
            )
            row[f"Tc ({backend})"] = result.period
            row[f"lp ms ({backend})"] = round(
                result.extra["stages"]["lp_solve"] * 1000, 2
            )
            row[f"iters ({backend})"] = result.extra["lp_iterations"]
        rows.append(row)
    return rows


def test_backends_agree(benchmark, emit):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    for row in rows:
        for backend in BACKENDS[1:]:
            assert row[f"Tc ({backend})"] == pytest.approx(
                row["Tc (simplex)"], abs=1e-6
            )
        for backend in BACKENDS:
            assert row[f"iters ({backend})"] > 0

    emit(
        "solver_ablation",
        format_comparison(
            rows,
            ["circuit"]
            + [f"Tc ({b})" for b in BACKENDS]
            + [f"lp ms ({b})" for b in BACKENDS]
            + [f"iters ({b})" for b in BACKENDS],
            "LP backend ablation: identical optima, different speed",
        ),
    )
