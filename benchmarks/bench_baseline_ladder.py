"""Algorithm ladder: MLP against every baseline of Section II.

Not a single paper figure, but the quantitative summary of the paper's
argument: exact level-sensitive optimization (MLP) beats the edge-
triggered approximation, bounded binary search, borrowing, and NRIP on
circuits that benefit from slack borrowing.  Emits the ladder for the
paper's example circuits.

The rungs run as :class:`repro.engine` baseline jobs sharing one engine,
so the emitted report includes the engine's per-stage metrics block.
"""

import pytest

from repro.baselines.ladder import run_ladder as ladder_rows
from repro.core.mlp import MLPOptions
from repro.core.reporting import format_comparison
from repro.designs import example1, example2
from repro.engine import Engine

FAST = MLPOptions(verify=False)

COLUMNS = {
    "mlp": "MLP",
    "nrip": "NRIP",
    "borrowing-1": "borrow(1)",
    "borrowing": "borrow(inf)",
    "binary-search": "binary",
    "edge-triggered": "edge",
}


def run_ladder(engine=None):
    engine = engine or Engine(jobs=1)
    rows = []
    for name, circuit in [("example1 @80", example1(80.0)), ("example2", example2())]:
        ladder = ladder_rows(circuit, mlp=FAST, engine=engine)
        row = {"circuit": name}
        for rung in ladder:
            row[COLUMNS[rung.algorithm]] = (
                round(rung.period, 3) if rung.algorithm == "binary-search"
                else rung.period
            )
        rows.append(row)
    return rows


def test_baseline_ladder(benchmark, emit):
    engine = Engine(jobs=1)
    rows = benchmark.pedantic(run_ladder, args=(engine,), rounds=1, iterations=1)

    for row in rows:
        opt = row["MLP"]
        for key in ("NRIP", "borrow(1)", "borrow(inf)", "binary", "edge"):
            assert row[key] >= opt - 1e-6, (row["circuit"], key)
    # Example 1 headline numbers.
    assert rows[0]["MLP"] == pytest.approx(110.0)
    assert rows[0]["edge"] == pytest.approx(180.0)
    # Example 2 headline gap.
    assert rows[1]["NRIP"] / rows[1]["MLP"] == pytest.approx(1.35)

    emit(
        "baseline_ladder",
        format_comparison(
            rows,
            ["circuit", "MLP", "NRIP", "borrow(1)", "borrow(inf)", "binary", "edge"],
            "Minimum cycle time by algorithm (smaller is better)",
        )
        + "\n\nengine metrics:\n"
        + engine.report.format(),
    )
