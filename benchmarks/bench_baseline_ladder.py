"""Algorithm ladder: MLP against every baseline of Section II.

Not a single paper figure, but the quantitative summary of the paper's
argument: exact level-sensitive optimization (MLP) beats the edge-
triggered approximation, bounded binary search, borrowing, and NRIP on
circuits that benefit from slack borrowing.  Emits the ladder for the
paper's example circuits.
"""

import pytest

from repro.baselines.binary_search import binary_search_minimize
from repro.baselines.borrowing import borrowing_minimize
from repro.baselines.edge_triggered import edge_triggered_minimize
from repro.baselines.nrip import nrip_minimize
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.reporting import format_comparison
from repro.designs import example1, example2

FAST = MLPOptions(verify=False)


def run_ladder():
    rows = []
    for name, circuit in [("example1 @80", example1(80.0)), ("example2", example2())]:
        opt = minimize_cycle_time(circuit, mlp=FAST).period
        rows.append(
            {
                "circuit": name,
                "MLP": opt,
                "NRIP": nrip_minimize(circuit, mlp=FAST).period,
                "borrow(1)": borrowing_minimize(circuit, 1).period,
                "borrow(inf)": borrowing_minimize(circuit, 40).period,
                "binary": round(binary_search_minimize(circuit), 3),
                "edge": edge_triggered_minimize(circuit, mlp=FAST).period,
            }
        )
    return rows


def test_baseline_ladder(benchmark, emit):
    rows = benchmark.pedantic(run_ladder, rounds=1, iterations=1)

    for row in rows:
        opt = row["MLP"]
        for key in ("NRIP", "borrow(1)", "borrow(inf)", "binary", "edge"):
            assert row[key] >= opt - 1e-6, (row["circuit"], key)
    # Example 1 headline numbers.
    assert rows[0]["MLP"] == pytest.approx(110.0)
    assert rows[0]["edge"] == pytest.approx(180.0)
    # Example 2 headline gap.
    assert rows[1]["NRIP"] / rows[1]["MLP"] == pytest.approx(1.35)

    emit(
        "baseline_ladder",
        format_comparison(
            rows,
            ["circuit", "MLP", "NRIP", "borrow(1)", "borrow(inf)", "binary", "edge"],
            "Minimum cycle time by algorithm (smaller is better)",
        ),
    )
